"""The restore side of the CRIU protocol (paper §3.2).

    "During the restoration, the CRIU tool process transmutes itself
    into the checkpointed process. The first action is to read the dump
    files and restore the process's state. Then, it recreates all
    namespaces and opened files. Finally, the checkpointed memory is
    remapped."

The engine also implements the two optimizations the paper's §7 plans
to evaluate: restoring from an in-memory image cache [26] and lazy
page population (userfaultfd-style), exposed as :class:`RestoreMode`
and ``in_memory``; ablation benchmarks sweep both.
"""

from __future__ import annotations

import contextlib
from enum import Enum
from typing import Optional, Tuple

from repro import faults, obs
from repro.criu.chunkcache import HotChunkCache, make_cache
from repro.criu.images import CheckpointImage
from repro.criu.pagestore import image_chunk_count, image_chunk_index
from repro.criu.workingset import WorkingSetRecord, WorkingSetTracker
from repro.faults.errors import RestoreFailed, SnapshotCorrupted
from repro.obs.profile import (
    RESTORE_CHUNK_FETCH,
    RESTORE_DIGEST_VERIFY,
    RESTORE_PIPELINE_RAMP,
    RESTORE_SHARD_FETCH,
    RESTORE_WS_PREFETCH,
)
from repro.osproc.kernel import Kernel
from repro.osproc.memory import VMAKind
from repro.osproc.process import Capability, Process, ProcessState
from repro.sim.costmodel import PipelinePlan


class RestoreError(Exception):
    """Restore protocol failure (misuse, not an injected fault)."""


class RestoreMode(Enum):
    EAGER = "eager"                # map and populate everything before resuming
    LAZY = "lazy"                  # resume early; fault pages on first touch
    WORKING_SET = "working-set"    # REAP: prefetch the recorded first-response
                                   # set, lazily fault the (rarely touched) rest


# Default fraction of the page-mapping cost paid up front in LAZY mode
# (hot pages criu always populates eagerly: stacks, parasite-adjacent).
# Tunable per engine via ``RestoreEngine(lazy_eager_fraction=...)``.
DEFAULT_LAZY_EAGER_FRACTION = 0.15

# Backward-compatible alias for the module-level constant.
LAZY_EAGER_FRACTION = DEFAULT_LAZY_EAGER_FRACTION

CRIU_BINARY = "/usr/sbin/criu"


class RestoreEngine:
    """Restores :class:`CheckpointImage` sets into live processes.

    ``lazy_eager_fraction`` is the share of the page-population cost a
    LAZY restore still pays before resuming (criu eagerly populates
    stacks and parasite-adjacent pages even under lazy-pages); the
    remainder becomes the ``lazy_restore_debt_ms`` charged to the first
    request.

    ``pipeline_workers`` parallelizes the page-population stage:
    ``N > 1`` overlaps chunk fetching with page mapping/prefetching
    (see :meth:`CostModel.plan_restore_pipeline`); the default of 1 is
    the original serial model, bit-identical to its charges.
    ``chunk_cache`` (or ``cache_policy``, which builds one) is a
    node-local :class:`HotChunkCache` consulted per chunk window —
    hits fetch at local-read speed instead of a registry round-trip.

    ``shard_store`` (a
    :class:`~repro.criu.shardstore.ShardedSnapshotStore`) replaces the
    flat registry with N replicated storage nodes: each restore issues
    quorum window fetches through it, prices retry hops and stragglers
    via :meth:`CostModel.shard_fetch_overhead_ms`, and records a
    :class:`~repro.criu.shardstore.DegradedRestoreReport` on
    ``last_shard_report``. A window no surviving replica nor the cache
    can serve raises :class:`RestoreFailed` (kind ``shard``) so the
    starter's retry/fallback ladder takes over. ``None`` (the default)
    keeps the unsharded path bit-identical.
    """

    def __init__(self, kernel: Kernel,
                 lazy_eager_fraction: float = DEFAULT_LAZY_EAGER_FRACTION,
                 pipeline_workers: int = 1,
                 chunk_cache: Optional[HotChunkCache] = None,
                 cache_policy: Optional[str] = None,
                 shard_store=None) -> None:
        if not 0.0 <= lazy_eager_fraction <= 1.0:
            raise ValueError(
                f"lazy_eager_fraction must be in [0, 1], got {lazy_eager_fraction}"
            )
        if pipeline_workers < 1:
            raise ValueError(
                f"pipeline_workers must be >= 1, got {pipeline_workers}")
        self.kernel = kernel
        self.lazy_eager_fraction = lazy_eager_fraction
        self.pipeline_workers = pipeline_workers
        self.chunk_cache = (chunk_cache if chunk_cache is not None
                            else make_cache(cache_policy))
        self.shard_store = shard_store
        self.last_shard_report = None
        kernel.fs.ensure(CRIU_BINARY, size=5 * 1024 * 1024)

    def restore(
        self,
        image: CheckpointImage,
        parent: Optional[Process] = None,
        mode: RestoreMode = RestoreMode.EAGER,
        in_memory: bool = False,
        duration_override_ms: Optional[float] = None,
        preserve_pid: bool = False,
    ) -> Process:
        """Bring the checkpointed process back to life.

        ``duration_override_ms`` substitutes a per-function calibrated
        restore duration (excluding the criu process spawn) for the
        generic size-based formula. ``preserve_pid`` restores under the
        original pid, as real criu does inside a pid namespace.
        """
        kernel = self.kernel
        image.validate()
        # Integrity gate: a corrupted image must never transmute into a
        # half-restored process — fail before any work is charged.
        try:
            image.verify_integrity()
        except SnapshotCorrupted:
            obs.count(kernel, "snapshot_corruption_detected_total")
            raise
        parent = parent or kernel.init_process

        # Spawn the criu process that will transmute into the target.
        spawn_parent = parent
        if not (parent.has_capability(Capability.SYS_ADMIN)
                or parent.has_capability(Capability.CHECKPOINT_RESTORE)):
            raise RestoreError(
                f"pid {parent.pid} lacks the capability to restore "
                "(CAP_SYS_ADMIN or CAP_CHECKPOINT_RESTORE)"
            )
        target_pid = image.pid if preserve_pid else None
        if target_pid is not None and target_pid in kernel.processes \
                and kernel.processes[target_pid].alive:
            raise RestoreError(
                f"cannot preserve pid {target_pid}: already alive in this kernel"
            )
        proc = kernel.clone(spawn_parent, comm="criu", target_pid=target_pid)
        kernel.execve(proc, CRIU_BINARY, argv=["criu", "restore", "--shell-job"])
        proc.state = ProcessState.RESTORING

        # The span opens right after execve so its duration matches the
        # tracer-observed RTS+APPINIT window of a restored start.
        with obs.span(kernel, "criu.restore", image=image.image_id,
                      image_mib=round(image.total_mib, 3), mode=mode.value,
                      in_memory=in_memory, warm=image.warm):
            obs.record(kernel, obs.flight.RESTORE_STARTED,
                       image=image.image_id, mode=mode.value,
                       image_mib=round(image.total_mib, 3))
            try:
                self._transmute(proc, image)
                with contextlib.ExitStack() as pipeline_spans:
                    if self.pipeline_workers > 1:
                        # Worker spans cover the fault sites and the
                        # fetch/map charge; an injected restore.fail
                        # unwinds through the stack, so every worker
                        # span closes and the harness's span-leak
                        # self-check stays green on retried restores.
                        for worker in range(self.pipeline_workers):
                            pipeline_spans.enter_context(obs.span(
                                kernel, "restore.pipeline-worker",
                                worker=worker, workers=self.pipeline_workers,
                                image=image.image_id))
                    self._inject_restore_faults(proc, image)

                    # REAP working-set restores: look up the record
                    # before costing — its size determines the
                    # prefetched fraction.
                    tracker: Optional[WorkingSetTracker] = None
                    ws_record: Optional[WorkingSetRecord] = None
                    if mode is RestoreMode.WORKING_SET:
                        tracker = WorkingSetTracker.install(kernel)
                        ws_record = tracker.record_for(image)

                    # Node-local hot-chunk cache: a hit turns a registry
                    # fetch into a local read (no RNG, pure bookkeeping).
                    # With a sharded store the windows the cache misses
                    # come through quorum fetches over the replica set.
                    shard_report = None
                    if self.shard_store is not None:
                        cached_fraction, shard_report = \
                            self._shard_fetch_pass(image)
                    else:
                        cached_fraction = self._chunk_cache_pass(image)

                    # Charge the restore work (page reads + remapping).
                    duration, plan, serial_duration = self._restore_duration(
                        image, mode, in_memory, duration_override_ms,
                        ws_record=ws_record, cached_fraction=cached_fraction)
                    shard_ms = 0.0
                    if shard_report is not None and (shard_report.retry_hops
                                                     or shard_report.slow_ms):
                        # Degraded fetches pay for their retry hops and
                        # stragglers; a clean quorum pass costs exactly 0.
                        shard_ms = kernel.costs.shard_fetch_overhead_ms(
                            shard_report.retry_hops, shard_report.slow_ms,
                            workers=self.pipeline_workers)
                        shard_report.extra_ms = shard_ms
                        duration += shard_ms
                    extra_ms = 0.0
                    if faults.should_fire(kernel, faults.IO_SLOW,
                                          detail=image.image_id):
                        # Slow storage under the image directory: the page
                        # reads pay the armed penalty on top of the model
                        # cost.
                        extra_ms = faults.extra_delay_ms(kernel, faults.IO_SLOW)
                        duration += extra_ms
                    charged = kernel.costs.jitter(duration, kernel.streams,
                                                  "criu.restore")
                    kernel.clock.advance(charged)
            except Exception:
                kernel.kill(proc.pid)
                raise
            if kernel.profile is not None:
                self._record_restore_phases(
                    proc, image, mode, ws_record, plan, extra_ms,
                    duration, charged, serial_duration, in_memory,
                    shard_ms=shard_ms)
            if mode is RestoreMode.LAZY:
                # The deferred paging debt is real page work, so it is
                # sized off the *serial* eager charge: pipelining the
                # up-front fraction does not shrink the pages left to
                # fault in.
                full = kernel.costs.restore_cost(image.total_mib,
                                                 duration_override_ms)
                proc.payload["lazy_restore_debt_ms"] = max(
                    0.0, full - serial_duration - extra_ms)

            proc.state = ProcessState.RUNNING
            kernel.probes.syscall_enter(
                "criu.restore", proc.pid, kernel.clock.now,
                detail=f"{image.total_mib:.1f}MiB image={image.image_id}",
            )
            runtime = proc.payload.get("runtime")
            if runtime is not None:
                runtime.mark_restored()
            if tracker is not None:
                if ws_record is None:
                    # First restore of this snapshot: record the pages
                    # touched before the first post-restore response.
                    tracker.begin_recording(proc, image)
                    obs.count(kernel, "ws_restore_total",
                              labels={"phase": "record"})
                else:
                    tracker.begin_prefetch(proc, image, ws_record)
                    obs.count(kernel, "ws_restore_total",
                              labels={"phase": "prefetch"})
                    obs.gauge(kernel, "ws_prefetch_fraction",
                              ws_record.fraction)
        obs.record(kernel, obs.flight.RESTORE_FINISHED,
                   image=image.image_id, mode=mode.value,
                   duration_ms=round(charged, 3))
        obs.count(kernel, "criu_restore_total", labels={"mode": mode.value})
        obs.observe(kernel, "criu_restore_duration_ms", charged,
                    labels={"mode": mode.value})
        return proc

    # -- internals ------------------------------------------------------------------

    def _inject_restore_faults(self, proc: Process, image: CheckpointImage) -> None:
        """Evaluate the restore-path fault sites (no-op when uninstalled).

        Both failure modes surface as :class:`RestoreFailed` — the
        caller's retry/fallback policy is the recovery path — but a
        hang first burns the watchdog timeout on the simulated clock,
        so hung restores are visibly more expensive than fast failures.
        """
        kernel = self.kernel
        if faults.should_fire(kernel, faults.RESTORE_FAIL, detail=image.image_id):
            obs.record(kernel, obs.flight.RESTORE_FAILED,
                       image=image.image_id, reason="fail")
            obs.count(kernel, "criu_restore_failures_total",
                      labels={"reason": "fail"})
            raise RestoreFailed(
                f"restore of image {image.image_id!r} failed "
                f"(criu pid {proc.pid} died)",
                image_id=image.image_id, kind="fail",
            )
        if faults.should_fire(kernel, faults.RESTORE_HANG, detail=image.image_id):
            hang_ms = faults.extra_delay_ms(kernel, faults.RESTORE_HANG)
            kernel.clock.advance(hang_ms)
            if kernel.profile is not None:
                # The burned watchdog window is page-fetch work that
                # never completed; keep it on the start-up ledger.
                kernel.profile.record(RESTORE_CHUNK_FETCH, hang_ms,
                                      pid=proc.pid, reason="hang")
            obs.record(kernel, obs.flight.RESTORE_FAILED,
                       image=image.image_id, reason="hang",
                       hang_ms=round(hang_ms, 3))
            obs.count(kernel, "criu_restore_failures_total",
                      labels={"reason": "hang"})
            raise RestoreFailed(
                f"restore of image {image.image_id!r} hung; watchdog killed "
                f"criu pid {proc.pid} after {hang_ms:g} ms",
                image_id=image.image_id, kind="hang",
            )

    def _chunk_cache_pass(self, image: CheckpointImage) -> float:
        """Consult the node-local cache for every chunk window.

        Returns the byte fraction of the image served by cache hits
        (0.0 with no cache configured). Deterministic bookkeeping: no
        RNG, no simulated time — the saved fetch work is priced by the
        pipeline plan, and effectiveness counters feed the SLO layer.
        """
        cache = self.chunk_cache
        if cache is None:
            return 0.0
        kernel = self.kernel
        hits = hit_bytes = total_bytes = 0
        index = image_chunk_index(image)
        for _vma_index, _window_start, cid, size_bytes in index:
            total_bytes += size_bytes
            if cache.lookup(cid, size_bytes):
                hits += 1
                hit_bytes += size_bytes
        obs.record(kernel, obs.flight.CACHE_LOOKUP, image=image.image_id,
                   lookups=len(index), hits=hits,
                   hit_fraction=round(hit_bytes / total_bytes, 4)
                   if total_bytes else 0.0)
        obs.count(kernel, "chunk_cache_lookups_total", value=float(len(index)))
        obs.count(kernel, "chunk_cache_hits_total", value=float(hits))
        obs.count(kernel, "chunk_cache_misses_total",
                  value=float(len(index) - hits))
        obs.gauge(kernel, "chunk_cache_hit_ratio", cache.stats.hit_ratio)
        obs.gauge(kernel, "chunk_cache_used_bytes", float(cache.used_bytes))
        return hit_bytes / total_bytes if total_bytes else 0.0

    def _shard_fetch_pass(self, image: CheckpointImage):
        """Fetch every window through the sharded store, cache-first.

        The degraded-mode ladder: node cache hit → first-success
        quorum fetch over surviving replicas → :class:`RestoreFailed`
        (kind ``shard``) when a window is unobtainable, which hands
        recovery to the starter's retry → vanilla ladder. Returns
        ``(cached byte fraction, DegradedRestoreReport)``; emits the
        same cache-effectiveness counters as the unsharded pass so
        SLOs and anomaly watches read identically either way.
        """
        kernel = self.kernel
        cache = self.chunk_cache
        report = self.shard_store.restore_pass(image, cache=cache)
        self.last_shard_report = report
        cached_fraction = (report.cached_bytes / report.total_bytes
                           if report.total_bytes else 0.0)
        if cache is not None:
            obs.record(kernel, obs.flight.CACHE_LOOKUP, image=image.image_id,
                       lookups=report.chunks, hits=report.cached_chunks,
                       hit_fraction=round(cached_fraction, 4))
            obs.count(kernel, "chunk_cache_lookups_total",
                      value=float(report.chunks))
            obs.count(kernel, "chunk_cache_hits_total",
                      value=float(report.cached_chunks))
            obs.count(kernel, "chunk_cache_misses_total",
                      value=float(report.chunks - report.cached_chunks))
            obs.gauge(kernel, "chunk_cache_hit_ratio", cache.stats.hit_ratio)
            obs.gauge(kernel, "chunk_cache_used_bytes",
                      float(cache.used_bytes))
        if report.failed_chunks:
            obs.record(kernel, obs.flight.RESTORE_FAILED,
                       image=image.image_id, reason="shard",
                       failed_chunks=len(report.failed_chunks),
                       nodes_down=",".join(report.nodes_down) or None)
            obs.count(kernel, "criu_restore_failures_total",
                      labels={"reason": "shard"})
            missing = report.failed_chunks[0][:12]
            raise RestoreFailed(
                f"restore of image {image.image_id!r}: "
                f"{len(report.failed_chunks)} chunk window(s) unobtainable "
                f"from any replica or cache (first: {missing}...)",
                image_id=image.image_id, kind="shard",
            )
        if report.degraded:
            obs.count(kernel, "restore_degraded_total")
            obs.record(kernel, obs.flight.RESTORE_DEGRADED,
                       image=image.image_id, **report.as_attrs())
        return cached_fraction, report

    def _restore_duration(
        self,
        image: CheckpointImage,
        mode: RestoreMode,
        in_memory: bool,
        override_ms: Optional[float],
        ws_record: Optional[WorkingSetRecord] = None,
        cached_fraction: float = 0.0,
    ) -> Tuple[float, Optional[PipelinePlan], float]:
        """(charged duration, pipeline plan or None, serial duration).

        The serial duration is what the unpipelined single-worker
        model would charge — the pipeline's baseline and the quantity
        LAZY paging debt is sized against. With ``pipeline_workers=1``
        and no cache hits the charged duration *is* the serial one and
        no plan is built, keeping the default path bit-identical.
        """
        costs = self.kernel.costs
        full = costs.restore_cost(image.total_mib, override_ms)
        # A calibrated override below the generic base means the whole
        # restore is that fast; never inflate it back up to the base.
        base = min(costs.restore_base_ms, full)
        pages_part = full - base
        if in_memory:
            # No disk reads: the image is already resident [26].
            pages_part *= costs.restore_in_memory_factor
        if mode is RestoreMode.LAZY:
            pages_part *= self.lazy_eager_fraction
        elif mode is RestoreMode.WORKING_SET and ws_record is not None:
            # Prefetch only the recorded working set; everything else
            # is left to demand faults (charged per miss at first
            # response — zero when the record is accurate).
            pages_part *= ws_record.fraction
        serial = base + pages_part
        if self.pipeline_workers == 1 and cached_fraction == 0.0:
            return serial, None, serial
        plan = costs.plan_restore_pipeline(
            pages_part, workers=self.pipeline_workers,
            chunk_count=image_chunk_count(image),
            cached_fraction=cached_fraction)
        return base + plan.total_ms, plan, serial

    def _record_restore_phases(
        self,
        proc: Process,
        image: CheckpointImage,
        mode: RestoreMode,
        ws_record: Optional[WorkingSetRecord],
        plan: Optional[PipelinePlan],
        extra_ms: float,
        duration: float,
        charged: float,
        serial_duration: float,
        in_memory: bool,
        shard_ms: float = 0.0,
    ) -> None:
        """Attribute the jittered restore charge to restore sub-phases.

        Mirrors the :meth:`_restore_duration` cost split (base →
        digest-verify, page population → chunk-fetch or working-set
        prefetch — preceded by a pipeline-ramp slice when overlapped —
        degraded shard-fetch hops → shard-fetch, injected io.slow
        penalty → chunk-fetch), then scales every part by
        ``charged / duration`` — with the last part as the remainder —
        so the recorded sub-phases sum to the jittered charge
        *exactly*, never to the pre-jitter model cost.
        """
        if plan is None:
            base = min(self.kernel.costs.restore_base_ms, serial_duration)
            pages_part = serial_duration - base
        else:
            base = duration - extra_ms - shard_ms - plan.total_ms
            pages_part = plan.total_ms
        parts = [(RESTORE_DIGEST_VERIFY, base, {"image": image.image_id})]
        if plan is not None and plan.pipelined and plan.ramp_ms:
            parts.append((RESTORE_PIPELINE_RAMP, plan.ramp_ms,
                          {"workers": plan.workers,
                           "chunks": plan.chunk_count}))
            pages_part -= plan.ramp_ms
        if mode is RestoreMode.WORKING_SET and ws_record is not None:
            parts.append((RESTORE_WS_PREFETCH, pages_part,
                          {"pages": ws_record.page_count,
                           "fraction": round(ws_record.fraction, 4)}))
        else:
            attrs = {"chunks": image_chunk_count(image),
                     "in_memory": in_memory}
            if plan is not None:
                attrs["workers"] = plan.workers
                attrs["cached_fraction"] = round(plan.cached_fraction, 4)
            parts.append((RESTORE_CHUNK_FETCH, pages_part, attrs))
        if shard_ms:
            report = self.last_shard_report
            parts.append((RESTORE_SHARD_FETCH, shard_ms,
                          {"retry_hops": report.retry_hops if report else 0,
                           "slow_ms": round(report.slow_ms, 3)
                           if report else 0.0}))
        if extra_ms:
            parts.append((RESTORE_CHUNK_FETCH, extra_ms,
                          {"reason": "io-slow"}))
        profiler = self.kernel.profile
        scale = charged / duration if duration else 0.0
        recorded = 0.0
        for position, (phase, part_ms, attrs) in enumerate(parts):
            if position == len(parts) - 1:
                scaled = charged - recorded
            else:
                scaled = part_ms * scale
            recorded += scaled
            profiler.record(phase, scaled, pid=proc.pid,
                            mode=mode.value, **attrs)

    def _transmute(self, proc: Process, image: CheckpointImage) -> None:
        """Rebuild namespaces, files and memory inside ``proc``."""
        kernel = self.kernel
        # Recreate namespaces: the restored process gets fresh namespace
        # instances equivalent to (but distinct from) the dumped ones.
        from repro.osproc.namespaces import NamespaceKind
        proc.namespaces = proc.namespaces.clone_with_new(*NamespaceKind)

        # Rebuild the address space exactly as dumped.
        space = proc.address_space
        space.clear()
        for desc in image.vmas:
            if desc.file_path is not None:
                kernel.fs.ensure(desc.file_path,
                                 size=max(desc.file_size, desc.file_offset + desc.length))
            vma = space.mmap(
                length=desc.length,
                kind=VMAKind(desc.kind),
                prot=desc.prot,
                start=desc.start,
                file_path=desc.file_path,
                file_offset=desc.file_offset,
                label=desc.label,
            )
            vma.populate_pages(desc.resident_indices, desc.content_tags,
                               dirty=False)
            if desc.file_path is not None:
                # Mapping the file's dumped pages leaves them warm — the
                # mechanism behind the paper's cheaper post-restore
                # class loading.
                kernel.page_cache.warm(kernel.fs.lookup(desc.file_path), fraction=1.0)

        # Reopen file descriptors.
        proc.fds.clear()
        for fd_desc in image.fds:
            file = kernel.fs.ensure(fd_desc.path, size=fd_desc.file_size)
            if fd_desc.is_socket:
                file.is_socket = True
            entry = proc.open_fd(file, flags=fd_desc.flags)
            entry.offset = fd_desc.offset

        # Restore identity and the runtime's logical state.
        proc.comm = image.comm
        proc.argv = list(image.argv)
        if image.runtime_state is not None:
            from repro.runtime import RUNTIME_KINDS
            kind = image.runtime_state["kind"]
            runtime_cls = RUNTIME_KINDS.get(kind)
            if runtime_cls is None:
                raise RestoreError(f"image requires unknown runtime kind {kind!r}")
            runtime_cls.from_snapshot_state(kernel, proc, image.runtime_state)
