"""Node-local hot-chunk cache for snapshot restores.

PR 3's content-addressed store makes snapshots *share* chunks; this
cache makes that sharing pay off at restore time. Each node keeps the
hot subset of registry chunks resident, so a replica restoring on a
node that recently restored the same function — or any function on the
same runtime base — fetches only the cold chunks from the registry.

Two policies:

* ``freq-over-size`` (default) — admission-controlled frequency cache:
  every lookup bumps a per-chunk frequency estimate (kept even for
  chunks not resident, like TinyLFU's ghost history); when the cache is
  full, a new chunk is admitted only if its frequency/size score beats
  the coldest resident chunk's, which protects the cache from one huge
  cold snapshot evicting many small hot chunks.
* ``lru`` — classic recency eviction, always admits.

The cache is deliberately deterministic (no RNG, no wall clock): the
recency stamp is a monotonic lookup counter, so identically seeded
experiments produce identical hit sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

FREQ_OVER_SIZE = "freq-over-size"
LRU = "lru"
POLICIES = (FREQ_OVER_SIZE, LRU)

# Default node cache: 256 MiB holds the paper's whole function set
# (largest snapshot 99.2 MiB) with room for churn; sweeps shrink it to
# force eviction pressure.
DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024

# Cap on the ghost frequency history so a long-lived node's bookkeeping
# stays bounded; coldest entries are dropped first.
_MAX_GHOST_ENTRIES = 65536


@dataclass
class CacheStats:
    """Cumulative effectiveness counters (what the metrics export)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0
    evictions: int = 0
    admission_rejects: int = 0
    prefetches: int = 0
    prefetch_bytes: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        total = self.hit_bytes + self.miss_bytes
        return self.hit_bytes / total if total else 0.0


class HotChunkCache:
    """Bounded chunk-id cache with a real admission/eviction policy."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
                 policy: str = FREQ_OVER_SIZE) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; known: {POLICIES}")
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.stats = CacheStats()
        self._resident: Dict[str, Tuple[int, int]] = {}  # cid -> (size, stamp)
        self._freq: Dict[str, int] = {}                  # ghost history too
        self._used_bytes = 0
        self._tick = 0

    # -- inspection ----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def resident_chunks(self) -> int:
        return len(self._resident)

    def contains(self, chunk_id: str) -> bool:
        return chunk_id in self._resident

    # -- the one hot-path operation ------------------------------------------

    def lookup(self, chunk_id: str, size_bytes: int) -> bool:
        """One restore-time chunk access: hit check + admission on miss.

        Returns True when the chunk was already resident (served at
        node-local speed). On a miss the chunk has just been fetched
        from the registry, so the policy decides whether to keep it.
        """
        self._tick += 1
        self.stats.lookups += 1
        freq = self._freq.get(chunk_id, 0) + 1
        self._freq[chunk_id] = freq
        if len(self._freq) > _MAX_GHOST_ENTRIES:
            self._trim_ghosts()
        if chunk_id in self._resident:
            self.stats.hits += 1
            self.stats.hit_bytes += size_bytes
            self._resident[chunk_id] = (size_bytes, self._tick)
            return True
        self.stats.misses += 1
        self.stats.miss_bytes += size_bytes
        self._admit(chunk_id, size_bytes, freq)
        return False

    def prefetch(self, chunk_id: str, size_bytes: int) -> bool:
        """Warm-path admission without miss accounting.

        Predictive prefetch pushes a chunk the policy *expects* to be
        needed; it is not a restore-time access, so it must not skew
        the hit/miss effectiveness counters. The frequency estimate
        still bumps (a prefetched chunk is evidence of heat) and the
        normal admission policy applies. Returns True when the chunk
        is resident afterwards (already present counts as success).
        """
        self._tick += 1
        freq = self._freq.get(chunk_id, 0) + 1
        self._freq[chunk_id] = freq
        if len(self._freq) > _MAX_GHOST_ENTRIES:
            self._trim_ghosts()
        if chunk_id in self._resident:
            self._resident[chunk_id] = (size_bytes, self._tick)
            return True
        self._admit(chunk_id, size_bytes, freq)
        admitted = chunk_id in self._resident
        if admitted:
            self.stats.prefetches += 1
            self.stats.prefetch_bytes += size_bytes
        return admitted

    # -- policy internals ----------------------------------------------------

    def _score(self, chunk_id: str, size_bytes: int) -> float:
        """Frequency-over-size: hot small chunks are worth the most."""
        return self._freq.get(chunk_id, 0) / max(1, size_bytes)

    def _admit(self, chunk_id: str, size_bytes: int, freq: int) -> None:
        if size_bytes > self.capacity_bytes:
            self.stats.admission_rejects += 1
            return
        while self._used_bytes + size_bytes > self.capacity_bytes:
            victim = self._pick_victim()
            if victim is None:
                self.stats.admission_rejects += 1
                return
            if (self.policy == FREQ_OVER_SIZE
                    and self._score(chunk_id, size_bytes)
                    < self._score(victim, self._resident[victim][0])):
                # The incoming chunk is colder than the coldest resident
                # one: keep the cache as is (TinyLFU-style admission).
                self.stats.admission_rejects += 1
                return
            self._evict(victim)
        self._resident[chunk_id] = (size_bytes, self._tick)
        self._used_bytes += size_bytes

    def _pick_victim(self) -> Optional[str]:
        if not self._resident:
            return None
        if self.policy == LRU:
            return min(self._resident, key=lambda cid: self._resident[cid][1])
        # freq-over-size, LRU as the tie-break so equal-score chunks
        # age out in access order.
        return min(
            self._resident,
            key=lambda cid: (self._score(cid, self._resident[cid][0]),
                             self._resident[cid][1]),
        )

    def _evict(self, chunk_id: str) -> None:
        size, _ = self._resident.pop(chunk_id)
        self._used_bytes -= size
        self.stats.evictions += 1

    def _trim_ghosts(self) -> None:
        """Drop the coldest non-resident history entries."""
        ghosts = sorted(
            (cid for cid in self._freq if cid not in self._resident),
            key=lambda cid: self._freq[cid],
        )
        for cid in ghosts[:len(ghosts) // 2]:
            del self._freq[cid]


def make_cache(policy: Optional[str],
               capacity_bytes: int = DEFAULT_CAPACITY_BYTES
               ) -> Optional[HotChunkCache]:
    """Build a cache from a knob value (None/"none"/"off" -> no cache)."""
    if policy is None or policy in ("none", "off", ""):
        return None
    return HotChunkCache(capacity_bytes=capacity_bytes, policy=policy)
