"""The dump side of the CRIU protocol (paper §3.2).

    "First, CRIU needs to freeze all the target process's threads ...
    it reads the /proc/$pid/pagemap file to find the mapped memory
    areas. Afterward, CRIU injects the procedure (parasite code)
    responsible for performing the actual dump into the target process
    address space using the ptrace system call. ... Finally, CRIU uses
    the ptrace system call to remove the parasite code and to detach
    from the target process, which resumes its execution."

Every step below maps to one of those sentences and charges virtual
time from the calibrated cost model.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro import obs
from repro.criu.images import (
    CheckpointImage,
    FdDescriptor,
    VMADescriptor,
    build_image_files,
)
from repro.osproc.kernel import Kernel
from repro.osproc.memory import VMAKind
from repro.osproc.process import Capability, Process, ProcessState

_image_ids = itertools.count(1)


class CheckpointError(Exception):
    """Dump protocol failure."""


class CheckpointEngine:
    """Dumps simulated processes into :class:`CheckpointImage` sets."""

    def __init__(self, kernel: Kernel, criu_process: Optional[Process] = None) -> None:
        self.kernel = kernel
        if criu_process is None:
            criu_process = kernel.clone(kernel.init_process, comm="criu")
            criu_process.capabilities.add(Capability.CHECKPOINT_RESTORE)
        self.criu_process = criu_process

    # -- protocol --------------------------------------------------------------------

    def dump(
        self,
        target: Process,
        leave_running: bool = True,
        warm: bool = False,
        parent_image: Optional[CheckpointImage] = None,
    ) -> CheckpointImage:
        """Checkpoint ``target`` and return the image set.

        ``leave_running`` mirrors criu's ``--leave-running`` flag (the
        build pipeline uses it so the baked process can be discarded
        explicitly). ``parent_image`` makes this an incremental dump:
        only pages whose soft-dirty bit is set since the parent dump
        are written.
        """
        kernel = self.kernel
        if not target.alive:
            raise CheckpointError(f"target pid {target.pid} is not alive")
        if target.state is not ProcessState.RUNNING:
            raise CheckpointError(
                f"target pid {target.pid} must be running, is {target.state.value}"
            )

        with obs.span(kernel, "criu.checkpoint", pid=target.pid,
                      comm=target.comm, warm=warm,
                      incremental=parent_image is not None) as dump_span:
            # 1. Freeze every thread in the group.
            kernel.freeze(target)
            try:
                # 2. Attach and inject the parasite blob.
                kernel.ptrace_seize(self.criu_process, target)
                kernel.ptrace_inject_parasite(self.criu_process, target)
                try:
                    image = self._collect(target, warm=warm,
                                          parent_image=parent_image)
                finally:
                    # 5. Cure: remove the parasite, detach.
                    kernel.ptrace_remove_parasite(self.criu_process, target)
                    kernel.ptrace_detach(self.criu_process, target)
            finally:
                if target.state is ProcessState.FROZEN:
                    kernel.thaw(target)
            if not leave_running:
                kernel.kill(target.pid)
            dump_span.set(image=image.image_id,
                          image_mib=round(image.total_mib, 3))
        obs.count(kernel, "criu_dump_total")
        obs.observe(kernel, "criu_dump_image_mib", image.total_mib)
        return image

    def pre_dump(self, target: Process) -> CheckpointImage:
        """Iterative pre-dump: dump now, clear soft-dirty for the next pass."""
        image = self.dump(target, leave_running=True)
        self.kernel.clear_refs(target.pid)
        return image

    # -- internals ---------------------------------------------------------------------

    def _collect(
        self,
        target: Process,
        warm: bool,
        parent_image: Optional[CheckpointImage],
    ) -> CheckpointImage:
        kernel = self.kernel
        # 3. Walk /proc/<pid>/pagemap to find what must be dumped.
        vma_descriptors = []
        incremental = parent_image is not None
        for vma in target.address_space.vmas:
            if vma.kind is VMAKind.PARASITE:
                continue  # the parasite never lands in the image
            indices, tags = vma.dump_pages(incremental=incremental)
            vma_descriptors.append(
                VMADescriptor(
                    start=vma.start,
                    length=vma.length,
                    kind=vma.kind.value,
                    prot=vma.prot,
                    label=vma.label,
                    file_path=vma.file_path,
                    file_offset=vma.file_offset,
                    file_size=(
                        kernel.fs.lookup(vma.file_path).size if vma.file_path
                        and kernel.fs.exists(vma.file_path) else 0
                    ),
                    resident_indices=tuple(indices),
                    content_tags=tuple(tags),
                )
            )

        fd_descriptors = [
            FdDescriptor(
                fd=d.fd,
                path=d.file.path,
                offset=d.offset,
                flags=d.flags,
                is_socket=d.file.is_socket,
                file_size=d.file.size,
            )
            for d in target.open_files()
        ]

        runtime = target.payload.get("runtime")
        runtime_state = runtime.snapshot_state() if runtime is not None else None

        image = CheckpointImage(
            image_id=f"img-{next(_image_ids):06d}",
            pid=target.pid,
            comm=target.comm,
            argv=list(target.argv),
            created_at_ms=kernel.clock.now,
            namespace_ids=target.namespaces.ids(),
            vmas=vma_descriptors,
            fds=fd_descriptors,
            runtime_state=runtime_state,
            parent_image_id=parent_image.image_id if parent_image else None,
            warm=warm,
        )
        build_image_files(image)
        image.validate()
        # Seal the content digest: restores verify against it, so any
        # later bit rot in the stored image is caught before transmute.
        image.seal()

        # 4. The parasite pipes page contents out to the criu process,
        # which writes the image files — charge the dump cost.
        duration = kernel.costs.jitter(
            kernel.costs.dump_cost(image.total_mib), kernel.streams, "criu.dump"
        )
        kernel.clock.advance(duration)
        kernel.probes.syscall_enter(
            "criu.dump", self.criu_process.pid, kernel.clock.now,
            detail=f"{image.total_mib:.1f}MiB pid={target.pid}",
        )
        return image
