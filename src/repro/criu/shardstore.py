"""Sharded, replicated snapshot chunk storage (ROADMAP item 1).

The registry PR 3 built is one logical store; at production scale the
snapshot store is itself a distributed system whose nodes crash,
partition and straggle. This module shards the content-addressed chunk
space across N simulated storage nodes with the machinery real stores
use to keep restores alive through that weather:

* **consistent-hash placement** — chunk digests map onto a ring of
  virtual nodes (:class:`HashRing`), so each window has a stable home
  set of ``replication_factor`` distinct nodes and adding a node moves
  only its arc of the ring;
* **quorum fetches** — a restore tries the replica set in ring order
  and takes the first success; every failed hop (down node, injected
  partition) is counted and priced through
  :meth:`CostModel.shard_fetch_overhead_ms`;
* **hinted handoff** — a write whose home node is down lands on the
  next live ring successor with a hint naming the real home; hints are
  delivered when the home recovers;
* **read-repair** — a fetch that observes an up-but-missing replica
  re-replicates the window on the spot;
* **anti-entropy** — a background pass walks the per-layer Merkle
  trees and folds repaired windows back in with
  :meth:`ImageMerkle.reverify_subtree`, so repair hash-work stays
  subtree-local and fully-replicated layers are skipped outright;
* **circuit breakers** — per-node, open after K consecutive failures,
  half-open probe after a sim-clock cooldown, so a dead node stops
  costing a retry hop on every single window once the breaker learns.

Fault sites (:mod:`repro.faults`): ``store.node_down`` crashes a node
for its armed delay, ``store.partition`` fails one replica hop,
``store.slow_shard`` makes one shard answer late. All draw from their
own seeded streams, so a plan that arms none of them — in particular
the RF=1 single-shard configuration the committed baselines pin —
consumes no randomness and charges no time beyond the unsharded model.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro import faults, obs
from repro.criu.merkle import ImageMerkle
from repro.criu.pagestore import LayeredImage

# Virtual nodes per physical storage node. 64 keeps the per-node load
# spread within a few percent of uniform for small clusters without
# making ring construction noticeable.
DEFAULT_VIRTUAL_NODES = 64

# Circuit breaker defaults: open after 3 consecutive failures, probe
# again 2 simulated seconds later (comfortably shorter than the default
# store.node_down outage, so recovery is observed via a probe).
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_RESET_MS = 2_000.0

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


def _ring_point(token: str) -> int:
    """Position of ``token`` on the 2**64 ring."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hashing over chunk digests with virtual nodes."""

    def __init__(self, node_names: List[str],
                 virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> None:
        if not node_names:
            raise ValueError("hash ring needs at least one node")
        if virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        points: List[Tuple[int, str]] = []
        for name in node_names:
            for replica in range(virtual_nodes):
                points.append((_ring_point(f"{name}#{replica}"), name))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [name for _, name in points]
        self._node_count = len(node_names)

    def walk(self, digest: str) -> Iterator[str]:
        """Distinct node names in ring order from ``digest``'s arc."""
        start = bisect.bisect_left(self._points, _ring_point(digest))
        seen = set()
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                yield owner
                if len(seen) == self._node_count:
                    return

    def nodes_for(self, digest: str, count: int) -> Tuple[str, ...]:
        """The first ``count`` distinct nodes on ``digest``'s arc."""
        homes = []
        for name in self.walk(digest):
            homes.append(name)
            if len(homes) == count:
                break
        return tuple(homes)


@dataclass
class StorageNode:
    """One simulated storage node: liveness plus the chunks it holds.

    A crash (``store.node_down``) keeps the on-disk chunks — the model
    is a process/VM outage, not disk loss — it just makes them
    unreachable until ``down_until_ms``. Writes that arrive while the
    node is down are hinted elsewhere and delivered on recovery.
    """

    name: str
    up: bool = True
    down_until_ms: float = 0.0
    holdings: Dict[str, int] = field(default_factory=dict)  # cid -> bytes
    # hints this node carries for down homes: cid -> (home name, bytes)
    hints: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    @property
    def stored_bytes(self) -> int:
        return sum(self.holdings.values())


class CircuitBreaker:
    """Per-node failure gate on the simulated clock.

    CLOSED counts consecutive failures; at ``threshold`` it OPENs and
    :meth:`allow` refuses (no retry hop is paid) until ``reset_ms``
    has elapsed, when it HALF-OPENs and admits one probe: a success
    closes it, a failure re-opens it for another cooldown.
    """

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 reset_ms: float = DEFAULT_BREAKER_RESET_MS) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_ms <= 0:
            raise ValueError(f"reset_ms must be > 0, got {reset_ms}")
        self.threshold = threshold
        self.reset_ms = reset_ms
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms = 0.0
        self.opens = 0

    def allow(self, now_ms: float) -> bool:
        """May a fetch try this node right now?"""
        if self.state == BREAKER_CLOSED:
            return True
        if now_ms - self.opened_at_ms >= self.reset_ms:
            self.state = BREAKER_HALF_OPEN
            return True
        return self.state == BREAKER_HALF_OPEN

    def record_success(self) -> bool:
        """Returns True when the success closed an open breaker."""
        closed = self.state != BREAKER_CLOSED
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        return closed

    def record_failure(self, now_ms: float) -> bool:
        """Returns True when this failure (re)opened the breaker."""
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN \
                or (self.state == BREAKER_CLOSED
                    and self.consecutive_failures >= self.threshold):
            self.state = BREAKER_OPEN
            self.opened_at_ms = now_ms
            self.opens += 1
            return True
        return False


@dataclass
class FetchResult:
    """Outcome of one quorum window fetch."""

    chunk_id: str
    found: bool
    served_by: Optional[str] = None
    retry_hops: int = 0
    slow_ms: float = 0.0
    available_replicas: int = 0
    degraded: bool = False      # fewer than RF replicas answered healthy
    read_repaired: int = 0


@dataclass
class DegradedRestoreReport:
    """Per-restore account of how hard the shard store had to work."""

    image_id: str
    chunks: int = 0
    total_bytes: int = 0
    cached_chunks: int = 0          # served by the node HotChunkCache
    cached_bytes: int = 0
    shard_chunks: int = 0           # served by a storage node
    degraded_chunks: int = 0        # served, but below full replication
    failed_chunks: List[str] = field(default_factory=list)
    retry_hops: int = 0
    slow_ms: float = 0.0
    extra_ms: float = 0.0           # priced by CostModel (engine fills in)
    read_repairs: int = 0
    nodes_down: List[str] = field(default_factory=list)
    breakers_open: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Did this restore run below full health at any window?"""
        return bool(self.degraded_chunks or self.failed_chunks
                    or self.retry_hops or self.slow_ms)

    @property
    def quorum_ok(self) -> bool:
        """Every window answered from its full home set."""
        return not (self.degraded_chunks or self.failed_chunks)

    def as_attrs(self) -> Dict[str, object]:
        """Flight-event attribute form (compact, JSON-safe)."""
        return {
            "chunks": self.chunks,
            "cached": self.cached_chunks,
            "degraded_chunks": self.degraded_chunks,
            "failed_chunks": len(self.failed_chunks),
            "retry_hops": self.retry_hops,
            "slow_ms": round(self.slow_ms, 3),
            "read_repairs": self.read_repairs,
            "nodes_down": ",".join(self.nodes_down) or None,
        }


@dataclass
class AntiEntropyReport:
    """Outcome of one Merkle-driven anti-entropy pass."""

    images_checked: int = 0
    layers_checked: int = 0
    layers_skipped: int = 0         # fully replicated: root match, no work
    windows_repaired: int = 0
    hash_ops: int = 0               # subtree-local re-verification work
    under_replicated: int = 0       # deficits left (home still down)


class ShardedSnapshotStore:
    """Chunk windows spread over N storage nodes with R-way replication.

    Fronts the refcounted :class:`~repro.criu.pagestore.PageStore`:
    the page store keeps *content* (deduped, refcounted); this store
    keeps *placement* — which nodes can serve each window — and the
    distributed-systems behavior of fetching through failures. Nodes
    are named ``store-0 .. store-N-1``.

    With no fault sites armed every code path is deterministic
    bookkeeping: no RNG draws, no simulated-time charges. Degradation
    cost is *reported* (retry hops, straggler ms) and priced by the
    caller through :meth:`CostModel.shard_fetch_overhead_ms`.
    """

    def __init__(self, kernel, node_count: int,
                 replication_factor: int = 1,
                 virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_reset_ms: float = DEFAULT_BREAKER_RESET_MS) -> None:
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        if not 1 <= replication_factor <= node_count:
            raise ValueError(
                f"replication_factor must be in [1, {node_count}], "
                f"got {replication_factor}")
        self.kernel = kernel
        self.replication_factor = replication_factor
        self.nodes: Dict[str, StorageNode] = {
            f"store-{i}": StorageNode(name=f"store-{i}")
            for i in range(node_count)
        }
        self.ring = HashRing(list(self.nodes), virtual_nodes=virtual_nodes)
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(threshold=breaker_threshold,
                                 reset_ms=breaker_reset_ms)
            for name in self.nodes
        }
        self._placements: Dict[str, Tuple[str, ...]] = {}
        self._sizes: Dict[str, int] = {}
        self._images: Dict[str, Tuple[LayeredImage, Optional[ImageMerkle]]] = {}
        self.handoffs = 0
        self.handoffs_delivered = 0
        self.read_repairs = 0
        self._export_node_gauges()

    # -- placement / writes ----------------------------------------------------

    def has_image(self, image_id: str) -> bool:
        return image_id in self._images

    def placement(self, cid: str) -> Tuple[str, ...]:
        homes = self._placements.get(cid)
        if homes is None:
            homes = self.ring.nodes_for(cid, self.replication_factor)
            self._placements[cid] = homes
        return homes

    def register_image(self, layered: LayeredImage,
                       merkle: Optional[ImageMerkle] = None) -> None:
        """Place every window of ``layered`` on its home replica set.

        A down home gets a hinted handoff: the window lands on the
        next live ring successor outside the home set, tagged with the
        real home, and moves there on recovery. Registering the same
        image again (rebake) re-asserts placement idempotently.
        """
        self._refresh()
        kernel = self.kernel
        for ref in layered.chunk_refs:
            cid = ref.chunk_id
            self._sizes[cid] = ref.size_bytes
            homes = self.placement(cid)
            for home in homes:
                node = self.nodes[home]
                if node.up:
                    node.holdings[cid] = ref.size_bytes
                else:
                    self._handoff(cid, ref.size_bytes, home, homes)
        self._images[layered.image_id] = (layered, merkle)

    def _handoff(self, cid: str, size_bytes: int, home: str,
                 homes: Tuple[str, ...]) -> None:
        """Park one write for a down home on a live ring successor."""
        for name in self.ring.walk(cid):
            if name in homes:
                continue
            node = self.nodes[name]
            if not node.up or cid in node.hints:
                continue
            node.hints[cid] = (home, size_bytes)
            self.handoffs += 1
            # A zero-duration stitched span: the hinted write is a hop
            # onto the carrier node, attributed to the active trace
            # (register_image under a deploy/bake span) if any.
            with obs.span(self.kernel, "shard.handoff",
                          node_id=name, home=home, chunk=cid[:12]):
                pass
            obs.count(self.kernel, "shard_hinted_handoff_total",
                      labels={"node": home})
            obs.record(self.kernel, obs.flight.SHARD_HANDOFF,
                       home=home, carrier=name, chunk=cid[:12], node=name)
            return
        # No live node can carry the hint; the write stays
        # under-replicated until anti-entropy finds it.

    # -- liveness --------------------------------------------------------------

    def fail_node(self, name: str, down_for_ms: float) -> None:
        """Crash ``name`` for ``down_for_ms`` of simulated time."""
        node = self.nodes[name]
        if not node.up:
            node.down_until_ms = max(node.down_until_ms,
                                     self.kernel.clock.now + down_for_ms)
            return
        node.up = False
        node.down_until_ms = self.kernel.clock.now + down_for_ms
        obs.count(self.kernel, "shard_node_down_total",
                  labels={"node": name})
        obs.record(self.kernel, obs.flight.SHARD_NODE_DOWN, node=name,
                   down_for_ms=round(down_for_ms, 3),
                   chunks=len(node.holdings))
        self._export_node_gauges()

    def recover_node(self, name: str) -> None:
        """Bring ``name`` back and deliver any hints parked for it."""
        node = self.nodes[name]
        if node.up:
            return
        node.up = True
        node.down_until_ms = 0.0
        delivered = 0
        for carrier in self.nodes.values():
            if not carrier.hints:
                continue
            for cid in [c for c, (home, _) in carrier.hints.items()
                        if home == name]:
                _, size_bytes = carrier.hints.pop(cid)
                node.holdings[cid] = size_bytes
                delivered += 1
        self.handoffs_delivered += delivered
        if delivered:
            obs.count(self.kernel, "shard_handoff_delivered_total",
                      value=float(delivered), labels={"node": name})
        obs.record(self.kernel, obs.flight.SHARD_NODE_UP, node=name,
                   hints_delivered=delivered)
        self._export_node_gauges()

    def _refresh(self) -> None:
        """Lazily recover nodes whose outage window has elapsed."""
        now = self.kernel.clock.now
        for node in self.nodes.values():
            if not node.up and now >= node.down_until_ms:
                self.recover_node(node.name)

    def up_nodes(self) -> List[str]:
        return [n.name for n in self.nodes.values() if n.up]

    def down_nodes(self) -> List[str]:
        return [n.name for n in self.nodes.values() if not n.up]

    def open_breakers(self) -> List[str]:
        return [name for name, b in self.breakers.items()
                if b.state != BREAKER_CLOSED]

    # -- fault-site integration ------------------------------------------------

    def maybe_crash_node(self, detail: str = "") -> Optional[str]:
        """Evaluate ``store.node_down`` once (one restore pass = one
        crossing). The victim is drawn from a dedicated stream only
        when the site fires, so unarmed plans stay draw-free."""
        self._refresh()
        kernel = self.kernel
        if not faults.should_fire(kernel, faults.STORE_NODE_DOWN,
                                  detail=detail):
            return None
        up = self.up_nodes()
        if not up:
            return None
        pick = int(kernel.streams.get("shard.node-down.victim").random()
                   * len(up))
        victim = up[min(pick, len(up) - 1)]
        down_for = faults.extra_delay_ms(kernel, faults.STORE_NODE_DOWN)
        self.fail_node(victim, down_for)
        return victim

    # -- reads -----------------------------------------------------------------

    def fetch_window(self, cid: str, size_bytes: int) -> FetchResult:
        """First-success quorum fetch of one chunk window.

        Walks the home replica set in ring order; a down node or an
        injected ``store.partition`` costs a retry hop and a breaker
        failure, an open breaker is skipped for free (that is its
        job), ``store.slow_shard`` adds straggler latency to a hop
        that does answer. An up-but-missing replica observed along the
        way is read-repaired from the serving node.
        """
        kernel = self.kernel
        now = kernel.clock.now
        homes = self.placement(cid)
        result = FetchResult(chunk_id=cid, found=False)
        missing_up: List[str] = []
        for name in homes:
            node = self.nodes[name]
            breaker = self.breakers[name]
            if not breaker.allow(now):
                continue
            if not node.up:
                result.retry_hops += 1
                if breaker.record_failure(now):
                    self._breaker_event(name, breaker)
                continue
            if faults.should_fire(kernel, faults.STORE_PARTITION,
                                  detail=f"{name}:{cid[:12]}"):
                result.retry_hops += 1
                if breaker.record_failure(now):
                    self._breaker_event(name, breaker)
                continue
            if breaker.record_success():
                self._breaker_event(name, breaker)
            if cid not in node.holdings:
                # Reachable but missing the window (handed-off write,
                # never-delivered hint): a wasted round-trip, and a
                # read-repair candidate once a copy is found.
                result.retry_hops += 1
                missing_up.append(name)
                continue
            if faults.should_fire(kernel, faults.STORE_SLOW_SHARD,
                                  detail=f"{name}:{cid[:12]}"):
                result.slow_ms += faults.extra_delay_ms(
                    kernel, faults.STORE_SLOW_SHARD)
            result.found = True
            result.served_by = name
            break
        if result.found:
            for name in missing_up:
                self.nodes[name].holdings[cid] = size_bytes
                result.read_repaired += 1
            if result.read_repaired:
                self.read_repairs += result.read_repaired
                obs.count(kernel, "shard_read_repair_total",
                          value=float(result.read_repaired))
                obs.record(kernel, obs.flight.SHARD_READ_REPAIR,
                           chunk=cid[:12], copies=result.read_repaired,
                           source=result.served_by)
        result.available_replicas = sum(
            1 for name in homes
            if self.nodes[name].up and cid in self.nodes[name].holdings)
        result.degraded = (result.available_replicas < len(homes)
                           or result.retry_hops > 0)
        return result

    def _breaker_event(self, name: str, breaker: CircuitBreaker) -> None:
        obs.record(self.kernel, obs.flight.SHARD_BREAKER, node=name,
                   state=breaker.state, opens=breaker.opens)
        if breaker.state == BREAKER_OPEN:
            obs.count(self.kernel, "shard_breaker_open_total",
                      labels={"node": name})
        obs.gauge(self.kernel, "shard_breaker_open",
                  0.0 if breaker.state == BREAKER_CLOSED else 1.0,
                  labels={"node": name})

    # -- restore-time entry point ----------------------------------------------

    def restore_pass(self, image, cache=None) -> DegradedRestoreReport:
        """Fetch every window of ``image``, cache-first.

        The degraded-mode ladder per window: node ``HotChunkCache``
        hit → quorum fetch over surviving replicas → (caller) vanilla
        start if the window is unobtainable. Returns the per-restore
        report; the caller prices ``retry_hops``/``slow_ms`` into the
        restore duration and decides whether failures are fatal.
        """
        from repro.criu.pagestore import image_chunk_index
        self.maybe_crash_node(detail=image.image_id)
        report = DegradedRestoreReport(image_id=image.image_id)
        # The pass runs synchronously under the caller's criu.restore
        # span, so stack-wins parenting stitches every remote hop into
        # the request's own trace: one cold start, one span tree,
        # crossing from the compute node into the storage nodes.
        with obs.span(self.kernel, "shard.restore-pass",
                      image_id=image.image_id[:12]) as pass_span:
            for _vma, _win, cid, size_bytes in image_chunk_index(image):
                report.chunks += 1
                report.total_bytes += size_bytes
                if cache is not None and cache.contains(cid):
                    cache.lookup(cid, size_bytes)  # bump recency/frequency
                    report.cached_chunks += 1
                    report.cached_bytes += size_bytes
                    continue
                with obs.span(self.kernel, "shard.fetch",
                              chunk=cid[:12]) as fetch_span:
                    fetched = self.fetch_window(cid, size_bytes)
                    fetch_span.set(
                        node_id=fetched.served_by or "unavailable",
                        hop=fetched.retry_hops,
                        degraded=fetched.degraded)
                report.retry_hops += fetched.retry_hops
                report.slow_ms += fetched.slow_ms
                report.read_repairs += fetched.read_repaired
                if fetched.found:
                    report.shard_chunks += 1
                    if fetched.degraded:
                        report.degraded_chunks += 1
                    if cache is not None:
                        cache.lookup(cid, size_bytes)  # admit fresh fetch
                else:
                    report.failed_chunks.append(cid)
            report.nodes_down = self.down_nodes()
            report.breakers_open = self.open_breakers()
            pass_span.set(chunks=report.chunks,
                          cached_chunks=report.cached_chunks,
                          shard_chunks=report.shard_chunks,
                          retry_hops=report.retry_hops,
                          degraded_chunks=report.degraded_chunks)
        kernel = self.kernel
        obs.count(kernel, "shard_fetch_total", value=float(report.chunks))
        if report.degraded_chunks:
            obs.count(kernel, "shard_fetch_degraded_total",
                      value=float(report.degraded_chunks))
        if report.failed_chunks:
            obs.count(kernel, "shard_fetch_failed_total",
                      value=float(len(report.failed_chunks)))
        if report.retry_hops:
            obs.count(kernel, "shard_fetch_retry_hops_total",
                      value=float(report.retry_hops))
        return report

    # -- anti-entropy ----------------------------------------------------------

    def anti_entropy(self) -> AntiEntropyReport:
        """Merkle-driven repair sweep over every registered image.

        A layer whose windows are all at full replication is skipped
        with zero hash work (its sealed root still covers it). Layers
        with deficits re-replicate each under-replicated window to its
        up homes and fold the (unchanged) digest back through
        :meth:`ImageMerkle.reverify_subtree`, so the accounted hash
        work is depth-of-subtree per repaired window, never a rebuild.
        """
        self._refresh()
        report = AntiEntropyReport()
        for layered, merkle in self._images.values():
            report.images_checked += 1
            for layer in layered.layers:
                if not layer.chunk_refs:
                    continue
                report.layers_checked += 1
                deficits = [
                    ref for ref in layer.chunk_refs
                    if any(ref.chunk_id not in self.nodes[h].holdings
                           for h in self.placement(ref.chunk_id))
                ]
                if not deficits:
                    report.layers_skipped += 1
                    continue
                for ref in deficits:
                    cid = ref.chunk_id
                    repaired = False
                    for home in self.placement(cid):
                        node = self.nodes[home]
                        if cid in node.holdings:
                            continue
                        if node.up:
                            node.holdings[cid] = ref.size_bytes
                            repaired = True
                        else:
                            report.under_replicated += 1
                    if repaired:
                        report.windows_repaired += 1
                        if merkle is not None:
                            report.hash_ops += merkle.reverify_subtree(
                                ref.vma_index, ref.window_start, cid)
        if report.windows_repaired or report.under_replicated:
            obs.count(self.kernel, "shard_anti_entropy_repairs_total",
                      value=float(report.windows_repaired))
        obs.record(self.kernel, obs.flight.SHARD_ANTI_ENTROPY,
                   images=report.images_checked,
                   layers_skipped=report.layers_skipped,
                   repaired=report.windows_repaired,
                   hash_ops=report.hash_ops,
                   under_replicated=report.under_replicated)
        return report

    # -- accounting ------------------------------------------------------------

    def _export_node_gauges(self) -> None:
        kernel = self.kernel
        up = 0
        for node in self.nodes.values():
            up += 1 if node.up else 0
            obs.gauge(kernel, "shard_node_up",
                      1.0 if node.up else 0.0, labels={"node": node.name})
        obs.gauge(kernel, "shard_nodes_up", float(up))

    def balance(self) -> Dict[str, int]:
        """Stored bytes per node (placement-balance inspection)."""
        return {name: node.stored_bytes
                for name, node in self.nodes.items()}

    def replica_count(self, cid: str) -> int:
        """Live, reachable copies of one window right now."""
        return sum(1 for h in self.placement(cid)
                   if self.nodes[h].up
                   and cid in self.nodes[h].holdings)
