#!/usr/bin/env python3
"""The paper's §5 OpenFaaS integration, end to end.

Creates a project from a CRIU template, builds it (which starts the
function, warms it, and checkpoints it *into the container image*),
pushes and deploys it, then cold-starts replicas through the gateway —
including the --privileged wrinkle with the Docker Swarm provider.

Run: ``python examples/openfaas_demo.py``
"""

from repro import make_world
from repro.faas.openfaas.providers import ProviderError
from repro.faas.openfaas.stack import make_openfaas_stack
from repro.functions import MarkdownFunction
from repro.runtime.base import Request


def main() -> None:
    world = make_world(seed=11)
    stack = make_openfaas_stack(world.kernel, provider_name="kubernetes")

    print("== faas-cli new/build/push/deploy (java8-criu-warm template) ==")
    stack.cli.new("render", "java8-criu-warm", MarkdownFunction)
    t0 = world.now
    image = stack.cli.build("render")
    print(f"build: {world.now - t0:.0f} ms — image {image.reference}, "
          f"{image.total_bytes / 1e6:.0f} MB, layers:")
    for layer in image.layers:
        print(f"  - {layer.name:15s} {layer.size_bytes / 1e6:8.1f} MB")
    print(f"  snapshot key: {image.snapshot_key}  "
          f"privileged required: {image.requires_privileged}")
    stack.cli.push("render")
    stack.cli.deploy("render")

    print("\n== first invocation (cold start via CRIU restore) ==")
    response = stack.gateway.invoke("render", Request(body="# Prebaked!"))
    replica = stack.gateway._services["render"].replicas[0]
    print(f"status {response.status}, cold start "
          f"{replica.cold_start_ms:.1f} ms, body starts: "
          f"{response.body.splitlines()[0]}")

    print("\n== scale to 3 replicas (each restores the same snapshot) ==")
    stack.gateway.scale("render", 3)
    key = stack.snapshot_store.keys()[0]
    print(f"replicas: {stack.gateway.replica_count('render')}, "
          f"snapshot {key} restored "
          f"{stack.snapshot_store.restore_count(key)} times")

    print("\n== Docker Swarm cannot run the privileged restore ==")
    swarm_world = make_world(seed=12)
    swarm = make_openfaas_stack(swarm_world.kernel, provider_name="dockerswarm")
    swarm.cli.new("render", "java8-criu", MarkdownFunction)
    swarm.cli.up("render")
    try:
        swarm.gateway.invoke("render")
    except ProviderError as exc:
        print(f"ProviderError (expected): {exc}")

    print("\n== ...unless the kernel has CAP_CHECKPOINT_RESTORE [11] ==")
    cap_world = make_world(seed=13)
    cap = make_openfaas_stack(cap_world.kernel, provider_name="dockerswarm",
                              allow_unprivileged_cr=True)
    cap.cli.new("render", "java8-criu", MarkdownFunction)
    cap.cli.up("render")
    response = cap.gateway.invoke("render")
    print(f"unprivileged restore worked: status {response.status}")


if __name__ == "__main__":
    main()
