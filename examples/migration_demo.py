#!/usr/bin/env python3
"""Live replica migration with iterative checkpoints.

Migrates a serving Markdown replica between (simulated) nodes, sweeping
the number of pre-dump rounds and showing the downtime/total-time
trade-off — plus an image diff between function versions to show how
much snapshot registries could deduplicate.

Run: ``python examples/migration_demo.py``
"""

from repro import make_world
from repro.core.bake import Prebaker
from repro.core.starters import VanillaStarter
from repro.criu.imgdiff import diff_images
from repro.criu.migrate import Migrator
from repro.functions import make_app
from repro.runtime.base import Request


def main() -> None:
    print("== live migration: pre-dump rounds vs downtime ==")
    for rounds in (0, 1, 2):
        world = make_world(seed=30 + rounds)
        kernel = world.kernel
        handle = VanillaStarter(kernel).start(make_app("markdown"))
        handle.invoke(Request(body="# pre-migration traffic"))

        def churn(h=handle):
            # The replica keeps serving while pre-dumps stream.
            h.invoke(Request(body="# concurrent request"))

        report = Migrator(kernel).migrate(
            handle.process, pre_dump_rounds=rounds,
            workload_between_rounds=churn,
        )
        survivor = kernel.get(report.restored_pid)
        response = survivor.payload["runtime"].handle(
            Request(body="# post-migration"))
        print(f"  rounds={rounds}: downtime {report.downtime_ms:6.1f} ms, "
              f"total {report.total_ms:6.1f} ms, final dump "
              f"{report.final_pages} pages, survivor serves: {response.ok}")

    print("\n== snapshot diff across function versions ==")
    world = make_world(seed=40)
    prebaker = Prebaker(world.kernel)
    v1 = prebaker.bake(make_app("markdown"), version=1)
    v2 = prebaker.bake(make_app("markdown"), version=2)
    diff = diff_images(v1.image, v2.image)
    print(diff.summary())
    print(f"→ a content-addressed registry would ship only "
          f"{diff.delta_bytes / (1024 * 1024):.1f} MiB for v2.")


if __name__ == "__main__":
    main()
