#!/usr/bin/env python3
"""Real-machine measurement: vanilla fork-exec vs zygote fork.

The closest on-host analog of the paper's comparison without a criu
binary: a *vanilla* start pays interpreter boot + imports + APPINIT,
while a *zygote* start forks a ready worker out of a warm master
process (pure state reuse, like restoring a snapshot). If a real
``criu`` binary is on PATH, the script also plans genuine dump/restore
command lines via the subprocess driver.

Run: ``python examples/real_process_demo.py [repetitions]``
"""

import sys

from repro.criu.cli import CriuCli
from repro.realproc import compare_startup


def main() -> None:
    repetitions = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    print(f"Real-process start-up on this host ({repetitions} reps each)\n")
    for function in ("noop", "markdown", "image-resizer"):
        comparison = compare_startup(function, repetitions=repetitions)
        print(comparison.render())
        print(f"  speed-up: {comparison.speedup_pct:.0f}% "
              "(the paper's Figure 6 convention)\n")

    cli = CriuCli()
    if cli.available:
        print(f"criu binary found at {cli.criu_path}; checking kernel support:")
        result = cli.check()
        print(f"  criu check rc={result.returncode}")
    else:
        planning = CriuCli(criu_path="/usr/sbin/criu", dry_run=True)
        print("no criu binary on this host; the equivalent real commands "
              "the prototype would run:")
        print(" ", " ".join(planning.dump_argv(1234, "/tmp/snap")))
        print(" ", " ".join(planning.restore_argv("/tmp/snap")))


if __name__ == "__main__":
    main()
