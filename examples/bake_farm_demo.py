#!/usr/bin/env python3
"""Checkpoint-as-a-service: concurrent snapshot generation (§7).

A burst of deploys hits the build farm at once — every bake occupies a
builder for its function's measured bake duration. Sweeping builder
concurrency shows the queue-wait/throughput trade-off, and the
snapshot-size effect (bigger functions bake longer) falls straight out
of the calibrated substrate.

Run: ``python examples/bake_farm_demo.py``
"""

from repro.core.bakery import bake_farm_sweep, measure_bake_duration
from repro.core.policy import AfterWarmup
from repro.bench.report import format_table


def main() -> None:
    functions = ["noop", "markdown", "image-resizer", "synthetic-big"]
    print("per-function bake durations (warm policy):")
    for name in functions:
        duration = measure_bake_duration(name, policy=AfterWarmup(1))
        print(f"  {name:15s} {duration:8.1f} ms")

    print("\n16 simultaneous deploys vs builder concurrency:")
    results = bake_farm_sweep(functions, submissions=16,
                              worker_counts=[1, 2, 4, 8])
    rows = []
    for workers, metrics in sorted(results.items()):
        rows.append([
            str(workers),
            f"{metrics.makespan_ms:9.1f}",
            f"{metrics.wait_quantile(0.5):9.1f}",
            f"{metrics.wait_quantile(0.9):9.1f}",
        ])
    print(format_table(
        ["builders", "makespan(ms)", "p50 wait(ms)", "p90 wait(ms)"], rows))


if __name__ == "__main__":
    main()
