#!/usr/bin/env python3
"""The §4.2.2 sensitivity study: when should the snapshot be taken?

Sweeps the snapshot point (after runtime boot → after ready → after
1/5 warm-up requests) across the paper's three synthetic function sizes
and prints the start-up speed-up each choice buys. This is the paper's
central finding: snapshotting a *warmed* function turns a ~25 %
improvement into a 4x-19x one, and the gain grows with code size.

Run: ``python examples/warmup_study.py [repetitions]``
"""

import sys

from repro.bench.harness import run_startup_experiment
from repro.bench.report import format_table
from repro.core.policy import AfterReady, AfterRuntimeBoot, AfterWarmup

SIZES = ("synthetic-small", "synthetic-medium", "synthetic-big")
POINTS = (
    ("vanilla (no snapshot)", "vanilla", AfterReady()),
    ("after runtime boot", "prebake", AfterRuntimeBoot()),
    ("after ready (PB-NOWarmup)", "prebake", AfterReady()),
    ("after 1 request (PB-Warmup)", "prebake", AfterWarmup(1)),
    ("after 5 requests", "prebake", AfterWarmup(5)),
)


def main() -> None:
    repetitions = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    rows = []
    vanilla_medians = {}
    for size in SIZES:
        for label, technique, policy in POINTS:
            summary = run_startup_experiment(
                size, technique, policy=policy,
                repetitions=repetitions, seed=7,
                metric="first_response",
            )
            if technique == "vanilla":
                vanilla_medians[size] = summary.median_ms
            speedup = 100.0 * vanilla_medians[size] / summary.median_ms
            rows.append([
                size.replace("synthetic-", ""),
                label,
                f"{summary.median_ms:9.2f}",
                f"{speedup:8.2f}%",
            ])
    print(f"Snapshot-point sensitivity ({repetitions} reps, "
          "time to first response)\n")
    print(format_table(
        ["size", "snapshot point", "median ms", "speed-up"], rows))
    print("\nPaper reference points: PB-NOWarmup 127.45% / PB-Warmup "
          "403.96% (small); 121.07% / 1932.49% (big).")


if __name__ == "__main__":
    main()
