#!/usr/bin/env python3
"""Platform-level workload study: how strategies behave under real
arrival patterns.

Compares vanilla / prebake / warm-pool on three canonical traces
(steady Poisson, bursty on/off, diurnal) and two idle-timeout settings,
reporting cold-start frequency, tail wait latency, and standing memory
cost — the full trade-off space the paper's introduction sketches.

Run: ``python examples/workload_study.py``
"""

from repro.bench.arrivals import bursty_arrivals, diurnal_arrivals, poisson_arrivals
from repro.bench.platform_study import compare_strategies, render_study

TRACES = {
    "steady (poisson 2 req/s, 5 min)": poisson_arrivals(
        rate_per_s=2.0, duration_ms=300_000, seed=1),
    "bursty (trains every ~60s, 10 min)": bursty_arrivals(
        burst_rate_per_s=20, duration_ms=600_000,
        mean_on_ms=2_000, mean_off_ms=60_000, seed=2),
    "diurnal (100s 'day', 5 min)": diurnal_arrivals(
        peak_rate_per_s=4.0, duration_ms=300_000,
        period_ms=100_000, floor_fraction=0.02, seed=3),
}


def main() -> None:
    for timeout_ms in (10_000.0, 60_000.0):
        for label, trace in TRACES.items():
            results = compare_strategies(
                "markdown", trace, idle_timeout_ms=timeout_ms, pool_size=1)
            title = (f"{label} — idle timeout {timeout_ms / 1000:.0f}s, "
                     f"{len(trace)} requests")
            print(render_study(results, title))
            print()


if __name__ == "__main__":
    main()
