#!/usr/bin/env python3
"""Quickstart: bake a function snapshot and start replicas from it.

Walks the paper's core idea in ~40 lines of API:

1. create a simulated world;
2. deploy a function — the builder starts it once, optionally warms it,
   and checkpoints it with the CRIU engine (the *prebake*);
3. cold-start replicas with both techniques and compare.

Run: ``python examples/quickstart.py``
"""

from repro import PrebakeManager, make_world
from repro.core.policy import AfterWarmup
from repro.functions import make_app
from repro.runtime.base import Request


def main() -> None:
    world = make_world(seed=42)
    manager = PrebakeManager(world.kernel)

    # Deploy the paper's Markdown Render function with a warmed snapshot
    # (one warm-up request forces the JVM to JIT-compile the handler).
    app = make_app("markdown")
    report = manager.deploy(app, policy=AfterWarmup(requests=1))
    print(f"baked {report.key}: {report.snapshot_mib:.1f} MiB snapshot "
          f"in {report.bake_duration_ms:.0f} ms (at build time)")

    # The state of the practice: fork-exec + full JVM bootstrap.
    vanilla = manager.start_replica(make_app("markdown"), technique="vanilla")
    print(f"vanilla cold start: {vanilla.startup_ms('ready'):7.2f} ms")

    # Prebaking: restore the snapshot instead.
    prebaked = manager.start_replica(app, technique="prebake",
                                     policy=AfterWarmup(requests=1))
    print(f"prebaked cold start:{prebaked.startup_ms('ready'):7.2f} ms")

    improvement = 1 - prebaked.startup_ms("ready") / vanilla.startup_ms("ready")
    print(f"improvement: {improvement:.0%} (paper reports 47% for this function)")

    # Restored replicas serve real responses — render some markdown.
    response = prebaked.invoke(Request(body="# Hello\n\nPrebaking *works*."))
    print("\nfirst response from the restored replica:")
    print(response.body)


if __name__ == "__main__":
    main()
