"""Benchmark E6 — Figure 7: service-time ECDFs after start-up.

Paper expectation: "Both ECDFs pretty much coincide, thus a good
indication that the prebaking technique does not lead to any
performance penalty after the functions are restored."
"""

import pytest

from repro.bench.figures import figure7


@pytest.mark.benchmark(group="fig7")
def test_fig7_service_time(benchmark, bench_reps, record_result):
    result = benchmark.pedantic(
        lambda: figure7(requests=bench_reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("fig7_service_time", result.render())
    for row in result.rows:
        benchmark.extra_info[f"{row.function}_vanilla_med_ms"] = round(
            row.vanilla.median_ms, 3)
        benchmark.extra_info[f"{row.function}_prebake_med_ms"] = round(
            row.prebake.median_ms, 3)
        benchmark.extra_info[f"{row.function}_ks"] = round(row.ks, 3)
        # No service-time penalty: distributions indistinguishable.
        assert row.mwu_p > 0.05
        assert row.ks < 0.2
        assert row.vanilla.errors == 0 and row.prebake.errors == 0
