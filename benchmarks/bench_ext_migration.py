"""Extension benchmark — live replica migration via iterative dumps.

Sweeps pre-dump rounds for a mutating replica and reports downtime vs
total migration time: the checkpoint-frequency trade-off the paper's §3
discusses for HPC, realized with the repo's incremental dump support.
"""

import pytest

from repro import make_world
from repro.bench.report import format_table
from repro.criu.migrate import Migrator


def _run_sweep(rounds_list, heap_mib=32.0, dirty_pages=64, seed=42):
    rows = []
    for rounds in rounds_list:
        world = make_world(seed=seed)
        kernel = world.kernel
        proc = kernel.clone(kernel.init_process, comm="replica")
        proc.address_space.grow_anon("heap", heap_mib, content_tag="v0")

        def churn(p=proc):
            heap = p.address_space.find_by_label("heap")
            for index in range(dirty_pages):
                heap.touch(index, content_tag="hot")

        report = Migrator(kernel).migrate(
            proc, pre_dump_rounds=rounds, workload_between_rounds=churn)
        rows.append((rounds, report))
    return rows


@pytest.mark.benchmark(group="extension")
def test_ext_migration_downtime(benchmark, record_result):
    rows = benchmark.pedantic(lambda: _run_sweep([0, 1, 2, 3]),
                              rounds=1, iterations=1)
    table = []
    downtimes = {}
    for rounds, report in rows:
        downtimes[rounds] = report.downtime_ms
        table.append([
            str(rounds),
            str(report.final_pages),
            f"{report.downtime_ms:.1f}",
            f"{report.total_ms:.1f}",
        ])
        benchmark.extra_info[f"rounds{rounds}_downtime_ms"] = round(
            report.downtime_ms, 1)
    record_result(
        "ext_migration",
        "Live migration: pre-dump rounds vs downtime (32 MiB replica, "
        "64 pages dirtied per round)\n"
        + format_table(["pre-dump rounds", "final dump (pages)",
                        "downtime(ms)", "total(ms)"], table),
    )
    # One pre-dump round slashes downtime; extra rounds keep helping
    # only marginally once the dirty set stabilizes.
    assert downtimes[1] < 0.75 * downtimes[0]
    assert downtimes[2] <= downtimes[1] * 1.05
