"""Benchmark — chaos recovery: fault-injection sweep over both start
techniques (extension beyond the paper; robustness of the prebake path).

Expectations: every request succeeds at every fault rate (restores
retry then fall back to vanilla; crashed replicas are reaped and the
request re-dispatched); with faults off nothing fires; at a 100 %
restore-failure rate the prebake technique degrades to roughly vanilla
speed plus the configured retry budget instead of failing.
"""

import pytest

from repro.bench.chaos import CHAOS_HANG_MS, chaos_experiment
from repro.faults.retry import DEFAULT_RETRY_POLICY


@pytest.mark.benchmark(group="chaos")
def test_chaos_recovery(benchmark, bench_reps, record_result):
    reps = max(5, bench_reps // 10)
    result = benchmark.pedantic(
        lambda: chaos_experiment(repetitions=reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("chaos_recovery", result.render())
    for t in result.treatments:
        benchmark.extra_info[
            f"rate{t.fault_rate:.2f}_{t.technique}_p50_ms"
        ] = round(t.cold_p50(), 2)
        # Resilience invariant: no request is ever lost to a fault.
        assert t.success_rate == 1.0

    # Faults off: the injector must not fire and no fallback happens.
    for technique in ("vanilla", "prebake"):
        calm = result.treatment(0.0, technique)
        assert calm.faults_fired == 0
        assert calm.fallbacks == 0

    # Full restore failure: every prebake cold start burned its retry
    # budget and fell back to vanilla — so its p50 sits near vanilla's
    # plus the retry overhead (failed attempts, possible hang delays,
    # backoff), never unboundedly worse.
    policy = DEFAULT_RETRY_POLICY
    worst = result.treatment(1.0, "prebake")
    vanilla = result.treatment(1.0, "vanilla")
    assert worst.fallbacks > 0
    assert worst.retries > 0
    retry_budget = (
        policy.total_backoff_ms()
        + policy.max_attempts * (CHAOS_HANG_MS + 60.0)
    )
    assert worst.cold_p50() <= vanilla.cold_p50() + retry_budget
