"""Benchmark A1 — ablations the paper's §3.1/§7 motivate:

* restore strategy: eager vs lazy page population, disk vs in-memory
  image cache (future work [26]);
* snapshot point: after runtime boot vs after ready vs after warm-up.
"""

import pytest

from repro.bench.figures import (
    ablation_bake_timing,
    ablation_restore,
    ablation_snapshot_point,
)


@pytest.mark.benchmark(group="ablation")
def test_ablation_restore_strategy(benchmark, bench_reps, record_result):
    reps = max(20, bench_reps // 2)
    result = benchmark.pedantic(
        lambda: ablation_restore(repetitions=reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("ablation_restore", result.render())
    rows = {(f, v): m for f, v, m in result.rows}
    for (function, variant), median_ms in rows.items():
        benchmark.extra_info[f"{function}_{variant}_ms"] = round(median_ms, 2)
    for function in ("synthetic-small", "synthetic-big"):
        eager_disk = rows[(function, "eager-disk")]
        # In-memory images restore faster; lazy population reaches
        # readiness sooner (it defers the page cost to the 1st request).
        assert rows[(function, "eager-inmem")] < eager_disk
        assert rows[(function, "lazy-disk")] < eager_disk
        assert rows[(function, "lazy-inmem")] <= rows[(function, "lazy-disk")] * 1.02


@pytest.mark.benchmark(group="ablation")
def test_ablation_snapshot_point(benchmark, bench_reps, record_result):
    reps = max(20, bench_reps // 2)
    result = benchmark.pedantic(
        lambda: ablation_snapshot_point(repetitions=reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("ablation_snapshot_point", result.render())
    rows = {(f, v): m for f, v, m in result.rows}
    for (function, variant), median_ms in rows.items():
        benchmark.extra_info[f"{function}_{variant}_ms"] = round(median_ms, 2)
    # The later the snapshot, the faster the first response.
    assert (rows[("synthetic-medium", "after-warmup-1")]
            < rows[("synthetic-medium", "after-ready")]
            < rows[("synthetic-medium", "after-runtime-boot")])


@pytest.mark.benchmark(group="ablation")
def test_ablation_bake_timing(benchmark, bench_reps, record_result):
    reps = max(15, bench_reps // 4)
    result = benchmark.pedantic(
        lambda: ablation_bake_timing(repetitions=reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("ablation_bake_timing", result.render())
    rows = {(f, v): m for f, v, m in result.rows}
    for (function, variant), median_ms in rows.items():
        benchmark.extra_info[f"{function}_{variant}_ms"] = round(median_ms, 2)
    # Baking at build time keeps the checkpoint off the request path:
    # lazy baking makes the first cold start *worse* than vanilla.
    for function in ("markdown", "synthetic-medium"):
        assert rows[(function, "bake-at-build")] < \
            0.5 * rows[(function, "bake-on-first-start")]
