"""Shared benchmark configuration.

``REPRO_BENCH_REPS`` controls repetitions per treatment (default 200,
the paper's protocol). Every benchmark writes its rendered paper-style
table to ``benchmarks/results/<name>.txt`` so a bench run leaves the
full reproduction record on disk.
"""

from __future__ import annotations

import os
import pathlib

import pytest

REPS = int(os.environ.get("REPRO_BENCH_REPS", "200"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_reps() -> int:
    return REPS


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a rendered experiment table to the results directory."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return _record
