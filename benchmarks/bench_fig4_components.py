"""Benchmark E2 — Figure 4: CLONE/EXEC/RTS/APPINIT phase breakdown.

Paper expectations: CLONE+EXEC are a tiny fraction; vanilla RTS ≈ 70 ms
for every function; prebaking drives RTS to 0 and start-up becomes
APPINIT-dominated; vanilla APPINIT(resizer)/APPINIT(noop) ≈ 7.18,
dropping to ≈ 1.43 under prebaking.
"""

import pytest

from repro.bench.figures import figure4


@pytest.mark.benchmark(group="fig4")
def test_fig4_components(benchmark, bench_reps, record_result):
    result = benchmark.pedantic(
        lambda: figure4(repetitions=bench_reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("fig4_components", result.render())
    for cell in result.cells:
        key = f"{cell.function}_{cell.technique}"
        benchmark.extra_info[f"{key}_rts_ms"] = round(cell.phases["RTS"], 2)
        benchmark.extra_info[f"{key}_appinit_ms"] = round(cell.phases["APPINIT"], 2)
        tiny = cell.phases["CLONE"] + cell.phases["EXEC"]
        assert tiny < 0.05 * cell.total_ms
        if cell.technique == "vanilla":
            assert cell.phases["RTS"] == pytest.approx(70.0, rel=0.05)
        else:
            assert cell.phases["RTS"] == 0.0
    ratio_vanilla = (result.cell("image-resizer", "vanilla").phases["APPINIT"]
                     / result.cell("noop", "vanilla").phases["APPINIT"])
    ratio_prebake = (result.cell("image-resizer", "prebake").phases["APPINIT"]
                     / result.cell("noop", "prebake").phases["APPINIT"])
    benchmark.extra_info["appinit_ratio_vanilla"] = round(ratio_vanilla, 2)
    benchmark.extra_info["appinit_ratio_prebake"] = round(ratio_prebake, 2)
    assert ratio_vanilla == pytest.approx(7.18, abs=1.0)
    assert ratio_prebake == pytest.approx(1.43, abs=0.3)
