"""Benchmark E4 — Figure 6: prebaking speed-up vs vanilla, with and
without warm-up, across function sizes.

Paper expectations: PB-NOWarmup ≈ 127.45 % (small) / 121.07 % (big);
PB-Warmup ≈ 403.96 % (small) / 1932.49 % (big) — the warm-up gain grows
with function size.
"""

import pytest

from repro.bench.figures import PAPER_FIG6_RATIOS, factorial


@pytest.mark.benchmark(group="fig6")
def test_fig6_speedup(benchmark, bench_reps, record_result):
    result = benchmark.pedantic(
        lambda: factorial(repetitions=bench_reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("fig6_speedup", result.render_figure6())
    warm_ratios = []
    for name in ("synthetic-small", "synthetic-medium", "synthetic-big"):
        nowarm = result.ratio_pct(name, "nowarmup")
        warm = result.ratio_pct(name, "warmup")
        benchmark.extra_info[f"{name}_nowarmup_pct"] = round(nowarm, 2)
        benchmark.extra_info[f"{name}_warmup_pct"] = round(warm, 2)
        warm_ratios.append(warm)
        paper = PAPER_FIG6_RATIOS.get(name)
        if paper:
            assert nowarm == pytest.approx(paper["nowarmup"], abs=10.0)
            assert warm == pytest.approx(paper["warmup"], rel=0.08)
    # The headline: warm-up speed-up grows with code size.
    assert warm_ratios[0] < warm_ratios[1] < warm_ratios[2]
