"""Benchmark E5 — Table 1: 95 % confidence intervals for start-up time
across {Vanilla, PB-NOWarmup, PB-Warmup} x {small, medium, big}.

Paper expectations: each measured interval lands within a few percent
of the published one; within each size, Warmup < NOWarmup < Vanilla.
"""

import pytest

from repro.bench.figures import PAPER_TABLE1, SYNTHETIC_FUNCTIONS, factorial


@pytest.mark.benchmark(group="table1")
def test_table1_intervals(benchmark, bench_reps, record_result):
    result = benchmark.pedantic(
        lambda: factorial(repetitions=bench_reps, seed=43),
        rounds=1, iterations=1,
    )
    record_result("table1_intervals", result.render_table1())
    for name in SYNTHETIC_FUNCTIONS:
        for treatment in ("vanilla", "nowarmup", "warmup"):
            summary = result.summary(name, treatment)
            ci = summary.ci()
            benchmark.extra_info[f"{name}_{treatment}"] = (
                f"({ci.low:.2f};{ci.high:.2f})")
            paper_low, paper_high = PAPER_TABLE1[name][treatment]
            paper_mid = (paper_low + paper_high) / 2
            tolerance = 0.10 if treatment == "warmup" else 0.06
            assert summary.median_ms == pytest.approx(paper_mid, rel=tolerance)
        assert (result.summary(name, "warmup").median_ms
                < result.summary(name, "nowarmup").median_ms
                < result.summary(name, "vanilla").median_ms)
