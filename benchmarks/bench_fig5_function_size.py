"""Benchmark E3 — Figure 5: function size impact on vanilla start-up.

Paper expectations (Table 1 vanilla column): small ≈ 220 ms,
medium ≈ 456 ms, big ≈ 1621 ms — monotone growth with code size.
"""

import pytest

from repro.bench.figures import PAPER_TABLE1, figure5


@pytest.mark.benchmark(group="fig5")
def test_fig5_function_size(benchmark, bench_reps, record_result):
    result = benchmark.pedantic(
        lambda: figure5(repetitions=bench_reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("fig5_function_size", result.render())
    medians = []
    for summary in result.summaries:
        benchmark.extra_info[f"{summary.function}_ms"] = round(summary.median_ms, 2)
        paper_low, paper_high = PAPER_TABLE1[summary.function]["vanilla"]
        paper_mid = (paper_low + paper_high) / 2
        assert summary.median_ms == pytest.approx(paper_mid, rel=0.05)
        medians.append(summary.median_ms)
    assert medians[0] < medians[1] < medians[2]
