"""Benchmark A2 — real-process start-up on this host.

Vanilla fork-exec of a fresh CPython vs forking out of a warm zygote —
the machine-level analog of the paper's comparison. The absolute
numbers are host-specific; the shape (state reuse wins by a large
factor) must hold.
"""

import os

import pytest

from repro.bench.stats import median
from repro.realproc import compare_startup

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="requires a POSIX host")

REAL_REPS = int(os.environ.get("REPRO_REAL_REPS", "10"))


@pytest.mark.benchmark(group="real")
@pytest.mark.parametrize("function", ["noop", "markdown", "image-resizer"])
def test_real_startup(benchmark, function, record_result):
    comparison = benchmark.pedantic(
        lambda: compare_startup(function, repetitions=REAL_REPS),
        rounds=1, iterations=1,
    )
    record_result(f"real_startup_{function}", comparison.render())
    benchmark.extra_info["vanilla_ms"] = round(comparison.vanilla_median, 1)
    benchmark.extra_info["zygote_ms"] = round(comparison.zygote_median, 1)
    benchmark.extra_info["improvement_pct"] = round(comparison.improvement_pct, 1)
    # The prebake analog must win decisively on any host.
    assert comparison.zygote_median < 0.5 * comparison.vanilla_median
