"""Micro-benchmarks of the checkpoint/restore engine itself.

These measure *host* wall-clock of the simulation substrate (how fast
the model executes), complementing the virtual-time experiment benches.
Useful to keep the simulator fast enough for 200-rep protocols.
"""

import pytest

from repro import make_world
from repro.criu.checkpoint import CheckpointEngine
from repro.criu.restore import RestoreEngine


def _world_with_process(mib: float):
    world = make_world(seed=1)
    proc = world.kernel.clone(world.kernel.init_process)
    proc.address_space.grow_anon("heap", mib)
    return world, proc


@pytest.mark.benchmark(group="micro")
@pytest.mark.parametrize("mib", [13.0, 99.2])
def test_micro_dump(benchmark, mib):
    world, proc = _world_with_process(mib)
    engine = CheckpointEngine(world.kernel)
    image = benchmark(lambda: engine.dump(proc, leave_running=True))
    assert image.total_mib == pytest.approx(mib, abs=1.0)


@pytest.mark.benchmark(group="micro")
@pytest.mark.parametrize("mib", [13.0, 99.2])
def test_micro_restore(benchmark, mib):
    world, proc = _world_with_process(mib)
    image = CheckpointEngine(world.kernel).dump(proc, leave_running=False)
    engine = RestoreEngine(world.kernel)
    restored = benchmark(lambda: engine.restore(image))
    assert restored.address_space.rss_mib == pytest.approx(mib, abs=0.1)


@pytest.mark.benchmark(group="micro")
def test_micro_markdown_render(benchmark):
    from repro.functions.markdown import SAMPLE_DOCUMENT
    from repro.functions.markdown_engine import render_document
    html = benchmark(lambda: render_document(SAMPLE_DOCUMENT))
    assert "<h1>" in html


@pytest.mark.benchmark(group="micro")
def test_micro_image_resize(benchmark):
    from repro.functions.imaging.generate import synthetic_photo
    from repro.functions.imaging.resize import scale_to_fraction
    photo = synthetic_photo(688, 288)
    thumb = benchmark(lambda: scale_to_fraction(photo, 0.10))
    assert thumb.size == (69, 29)
