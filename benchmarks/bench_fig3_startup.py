"""Benchmark E1 — Figure 3: start-up time of NOOP / Markdown Render /
Image Resizer under vanilla vs prebaking (200 reps, bootstrap CIs).

Paper expectations: improvements of 40 % (NOOP), 47 % (Markdown,
100→53 ms) and 71 % (Image Resizer, 310→87 ms); disjoint confidence
intervals; Mann–Whitney rejects median equality.
"""

import pytest

from repro.bench.figures import PAPER_FIG3_IMPROVEMENT, figure3


@pytest.mark.benchmark(group="fig3")
def test_fig3_startup(benchmark, bench_reps, record_result):
    result = benchmark.pedantic(
        lambda: figure3(repetitions=bench_reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("fig3_startup", result.render())
    for row in result.rows:
        benchmark.extra_info[f"{row.function}_vanilla_ms"] = round(
            row.vanilla.median_ms, 2)
        benchmark.extra_info[f"{row.function}_prebake_ms"] = round(
            row.prebake.median_ms, 2)
        benchmark.extra_info[f"{row.function}_improvement_pct"] = round(
            row.improvement_pct, 1)
        # Shape assertions against the paper.
        paper = PAPER_FIG3_IMPROVEMENT[row.function]
        assert row.improvement_pct == pytest.approx(paper, abs=4.0)
        assert row.mwu_p < 0.01
        assert not row.vanilla.ci().overlaps(row.prebake.ci())
