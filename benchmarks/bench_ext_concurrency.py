"""Extension benchmark — concurrent scale-out bursts.

A burst of simultaneous requests against a scaled-to-zero function:
every request (up to the replica cap) pays a cold start *in parallel*.
Prebaking shrinks the whole burst's makespan by the same factor it
shrinks a single cold start — exactly the autoscaling scenario the
paper's introduction motivates.
"""

import pytest

from repro.core.policy import AfterWarmup
from repro.faas.cluster import run_burst_experiment
from repro.bench.report import format_table


@pytest.mark.benchmark(group="extension")
def test_ext_concurrent_burst(benchmark, record_result):
    def run():
        out = {}
        for technique, policy in (("vanilla", None),
                                  ("prebake", AfterWarmup(1))):
            out[technique] = {
                "burst8": run_burst_experiment(
                    "markdown", technique, burst_size=8,
                    policy=policy, max_replicas=8, seed=42),
                "burst32cap8": run_burst_experiment(
                    "markdown", technique, burst_size=32,
                    policy=policy, max_replicas=8, seed=42),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for technique, cases in results.items():
        for case, metrics in cases.items():
            rows.append([
                technique, case,
                str(metrics.cold_starts),
                f"{metrics.wait_quantile(0.99):.1f}",
                f"{metrics.makespan_ms:.1f}",
            ])
            benchmark.extra_info[f"{technique}_{case}_makespan_ms"] = round(
                metrics.makespan_ms, 1)
    record_result(
        "ext_concurrency",
        "Concurrent bursts, markdown, scaled-to-zero start\n"
        + format_table(
            ["technique", "scenario", "cold starts", "p99 wait(ms)",
             "makespan(ms)"],
            rows,
        ),
    )
    vanilla = results["vanilla"]
    prebake = results["prebake"]
    for case in ("burst8", "burst32cap8"):
        assert prebake[case].makespan_ms < 0.75 * vanilla[case].makespan_ms
    # Capped burst: exactly max_replicas cold starts, the rest queue.
    assert vanilla["burst32cap8"].cold_starts == 8
    assert vanilla["burst32cap8"].peak_replicas == 8
