"""Extension benchmark — §7 future work: prebaking across runtimes.

JVM vs CPython vs Node.js hosting the same markdown workload, vanilla
vs warm prebake. Non-JVM runtime constants are projections; assertions
only check the relative picture.
"""

import pytest

from repro.bench.figures import ext_runtimes


@pytest.mark.benchmark(group="extension")
def test_ext_runtimes(benchmark, bench_reps, record_result):
    reps = max(20, bench_reps // 2)
    result = benchmark.pedantic(
        lambda: ext_runtimes(repetitions=reps, seed=42),
        rounds=1, iterations=1,
    )
    record_result("ext_runtimes", result.render())
    rows = {(f, v): m for f, v, m in result.rows}
    for (function, variant), median_ms in rows.items():
        benchmark.extra_info[f"{function}_{variant}_ms"] = round(median_ms, 2)
    # Prebaking helps every runtime...
    for function in ("markdown", "py-markdown", "node-markdown"):
        assert rows[(function, "prebake-warm")] < rows[(function, "vanilla")]
    # ...and helps most where bootstrap + lazy-load state is largest:
    # JVM and Node gain far more than the cheap-booting CPython.
    def gain(function):
        return rows[(function, "vanilla")] / rows[(function, "prebake-warm")]
    assert gain("markdown") > gain("py-markdown")
    assert gain("node-markdown") > gain("py-markdown")
