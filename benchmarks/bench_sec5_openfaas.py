"""Benchmark E7 — Section 5: OpenFaaS integration feasibility.

Drives faas-cli new → build (with build-time checkpoint) → push →
deploy → cold start for vanilla and CRIU templates. Expectation: the
snapshot ships inside the image, restore needs --privileged, and the
prebaked cold start beats the vanilla one.
"""

import pytest

from repro.bench.figures import section5


@pytest.mark.benchmark(group="sec5")
def test_sec5_openfaas_integration(benchmark, record_result):
    result = benchmark.pedantic(lambda: section5(seed=42),
                                rounds=1, iterations=1)
    record_result("sec5_openfaas", result.render())
    colds = {(fn, tpl): cold for fn, tpl, _build, cold in result.rows}
    builds = {(fn, tpl): build for fn, tpl, build, _cold in result.rows}
    for (fn, tpl), cold in colds.items():
        benchmark.extra_info[f"{fn}@{tpl}_cold_ms"] = round(cold, 2)
    # Prebaked templates halve the markdown cold start.
    vanilla = colds[("markdown", "java8")]
    assert colds[("markdown", "java8-criu")] < 0.7 * vanilla
    assert colds[("markdown", "java8-criu-warm")] < 0.7 * vanilla
    # Baking happens at build time: CRIU builds are slower, cold
    # starts are not delayed by it.
    assert builds[("markdown", "java8-criu")] > builds[("markdown", "java8")]
