"""Extension benchmark — prebaking vs the warm-pool baseline [14].

Replays a bursty arrival trace against three strategies and reports the
trade-off the paper's introduction frames: the pool removes cold-start
waits entirely but pays a standing memory cost; prebaking shrinks the
waits without holding instances; vanilla pays full price.
"""

import pytest

from repro.bench.arrivals import bursty_arrivals
from repro.bench.platform_study import compare_strategies, render_study


@pytest.mark.benchmark(group="extension")
def test_ext_pool_baseline(benchmark, record_result):
    trace = bursty_arrivals(burst_rate_per_s=20, duration_ms=600_000,
                            mean_on_ms=2_000, mean_off_ms=60_000, seed=42)
    results = benchmark.pedantic(
        lambda: compare_strategies("markdown", trace,
                                   idle_timeout_ms=30_000, pool_size=1),
        rounds=1, iterations=1,
    )
    record_result(
        "ext_pool_baseline",
        render_study(results, "Bursty trace (10 min), markdown, "
                              "30 s idle timeout"),
    )
    by_name = {r.strategy: r for r in results}
    vanilla, prebake, pool = (by_name["vanilla"], by_name["prebake"],
                              by_name["pool-1"])
    for r in results:
        benchmark.extra_info[f"{r.strategy}_p99_ms"] = round(r.latency_p(0.99), 2)
        benchmark.extra_info[f"{r.strategy}_cold_pct"] = round(
            100 * r.cold_fraction, 2)
    # Same GC policy → same cold-start frequency; prebake cuts the wait.
    assert prebake.cold_starts == vanilla.cold_starts
    assert prebake.latency_p(0.99) < 0.7 * vanilla.latency_p(0.99)
    # The pool trades memory for zero waits.
    assert pool.latency_p(0.99) == 0.0
    assert pool.idle_mib_ms > 0
