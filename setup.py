"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so ``pip install
-e .`` must use the legacy ``setup.py develop`` path; metadata lives in
pyproject.toml.
"""

from setuptools import setup

# Older setuptools (this host has 65.x) does not wire [project.scripts]
# from pyproject.toml through the legacy develop path — declare the
# console script here too.
setup(
    entry_points={
        "console_scripts": [
            "prebake-bench = repro.bench.cli:main",
        ],
    },
)
