"""Tests for the simulated kernel: syscalls, freezer, ptrace, procfs."""

import pytest

from repro.osproc.kernel import Kernel, KernelError, PermissionDenied
from repro.osproc.namespaces import NamespaceKind
from repro.osproc.process import Capability, ProcessState
from repro.sim.costmodel import DEFAULT_COST_MODEL


@pytest.fixture
def quiet():
    from repro.sim.clock import SimClock
    from repro.sim.rng import RandomStreams
    return Kernel(clock=SimClock(), costs=DEFAULT_COST_MODEL.with_noise_sigma(0.0),
                  streams=RandomStreams(seed=0))


class TestClone:
    def test_clone_creates_child(self, kernel):
        child = kernel.clone(kernel.init_process, comm="worker")
        assert child.ppid == kernel.init_process.pid
        assert child.pid in kernel.processes
        assert child.pid in kernel.init_process.children

    def test_clone_advances_clock(self, quiet):
        before = quiet.clock.now
        quiet.clone(quiet.init_process)
        assert quiet.clock.now - before == pytest.approx(DEFAULT_COST_MODEL.clone_ms)

    def test_clone_emits_probes(self, kernel):
        seen = []
        kernel.probes.on_enter("clone", lambda r: seen.append(("in", r.pid)))
        kernel.probes.on_exit("clone", lambda r: seen.append(("out", r.pid)))
        kernel.clone(kernel.init_process)
        assert seen == [("in", 1), ("out", 1)]

    def test_clone_with_new_namespaces(self, kernel):
        child = kernel.clone(kernel.init_process,
                             new_namespaces=(NamespaceKind.PID, NamespaceKind.NET))
        parent_ns = kernel.init_process.namespaces
        assert child.namespaces.get(NamespaceKind.PID) != parent_ns.get(NamespaceKind.PID)
        assert child.namespaces.get(NamespaceKind.MNT) == parent_ns.get(NamespaceKind.MNT)

    def test_clone_dead_parent_rejected(self, kernel):
        child = kernel.clone(kernel.init_process)
        kernel.kill(child.pid)
        with pytest.raises(KernelError):
            kernel.clone(child)

    def test_target_pid_requires_capability(self, kernel):
        unprivileged = kernel.clone(kernel.init_process, inherit_capabilities=False)
        with pytest.raises(PermissionDenied):
            kernel.clone(unprivileged, target_pid=9999)

    def test_target_pid_with_capability(self, kernel):
        child = kernel.clone(kernel.init_process, target_pid=5000)
        assert child.pid == 5000
        # Next auto pid must not collide.
        nxt = kernel.clone(kernel.init_process)
        assert nxt.pid > 5000

    def test_target_pid_in_use_rejected(self, kernel):
        kernel.clone(kernel.init_process, target_pid=777)
        with pytest.raises(KernelError, match="already in use"):
            kernel.clone(kernel.init_process, target_pid=777)


class TestExec:
    def test_execve_replaces_image(self, kernel):
        kernel.fs.create("/bin/app", size=100_000)
        proc = kernel.clone(kernel.init_process)
        proc.payload["junk"] = 1
        proc.address_space.grow_anon("old", 1.0)
        kernel.execve(proc, "/bin/app", argv=["/bin/app", "-x"])
        assert proc.comm == "app"
        assert proc.argv == ["/bin/app", "-x"]
        assert proc.payload == {}
        assert proc.address_space.find_by_label("old") is None
        assert proc.address_space.find_by_label("text") is not None
        assert proc.address_space.find_by_label("stack") is not None

    def test_execve_missing_binary_rejected(self, kernel):
        proc = kernel.clone(kernel.init_process)
        with pytest.raises(Exception, match="no such file"):
            kernel.execve(proc, "/bin/missing")

    def test_execve_warms_binary_cache(self, kernel):
        binary = kernel.fs.create("/bin/app", size=50_000)
        proc = kernel.clone(kernel.init_process)
        kernel.execve(proc, "/bin/app")
        assert kernel.page_cache.warmth(binary) == 1.0


class TestExitWaitKill:
    def test_exit_makes_zombie(self, kernel):
        child = kernel.clone(kernel.init_process)
        kernel.exit(child, code=3)
        assert child.state is ProcessState.ZOMBIE
        assert child.exit_code == 3

    def test_wait_reaps_and_returns_code(self, kernel):
        child = kernel.clone(kernel.init_process)
        kernel.exit(child, code=7)
        code = kernel.wait(kernel.init_process, child.pid)
        assert code == 7
        assert child.state is ProcessState.DEAD
        assert child.pid not in kernel.init_process.children

    def test_wait_on_running_child_rejected(self, kernel):
        child = kernel.clone(kernel.init_process)
        with pytest.raises(KernelError, match="has not exited"):
            kernel.wait(kernel.init_process, child.pid)

    def test_wait_on_non_child_rejected(self, kernel):
        a = kernel.clone(kernel.init_process)
        b = kernel.clone(a)
        kernel.exit(b)
        with pytest.raises(KernelError, match="not a child"):
            kernel.wait(kernel.init_process, b.pid)

    def test_kill_releases_memory(self, kernel):
        child = kernel.clone(kernel.init_process)
        child.address_space.grow_anon("heap", 4.0)
        kernel.kill(child.pid)
        assert child.state is ProcessState.DEAD
        assert child.address_space.rss_bytes == 0

    def test_kill_is_idempotent(self, kernel):
        child = kernel.clone(kernel.init_process)
        kernel.kill(child.pid)
        kernel.kill(child.pid)
        assert child.state is ProcessState.DEAD

    def test_kill_unknown_pid_rejected(self, kernel):
        with pytest.raises(KernelError, match="ESRCH"):
            kernel.kill(424242)


class TestFreezer:
    def test_freeze_thaw_cycle(self, kernel):
        child = kernel.clone(kernel.init_process)
        kernel.freeze(child)
        assert child.state is ProcessState.FROZEN
        assert all(t.state.value == "frozen" for t in child.threads)
        kernel.thaw(child)
        assert child.state is ProcessState.RUNNING

    def test_double_freeze_rejected(self, kernel):
        child = kernel.clone(kernel.init_process)
        kernel.freeze(child)
        with pytest.raises(KernelError):
            kernel.freeze(child)

    def test_thaw_running_rejected(self, kernel):
        child = kernel.clone(kernel.init_process)
        with pytest.raises(KernelError):
            kernel.thaw(child)


class TestPtrace:
    def _privileged(self, kernel):
        tracer = kernel.clone(kernel.init_process)
        tracer.capabilities.add(Capability.CHECKPOINT_RESTORE)
        return tracer

    def test_seize_requires_capability(self, kernel):
        tracer = kernel.clone(kernel.init_process, inherit_capabilities=False)
        target = kernel.clone(kernel.init_process)
        with pytest.raises(PermissionDenied):
            kernel.ptrace_seize(tracer, target)

    def test_seize_inject_cure_detach(self, kernel):
        tracer = self._privileged(kernel)
        target = kernel.clone(kernel.init_process)
        kernel.ptrace_seize(tracer, target)
        assert kernel.tracer_of(target.pid) == tracer.pid
        vma = kernel.ptrace_inject_parasite(tracer, target)
        assert vma.label == "criu-parasite"
        assert target.address_space.find_by_label("criu-parasite") is vma
        kernel.ptrace_remove_parasite(tracer, target)
        assert target.address_space.find_by_label("criu-parasite") is None
        kernel.ptrace_detach(tracer, target)
        assert kernel.tracer_of(target.pid) is None

    def test_double_seize_rejected(self, kernel):
        tracer = self._privileged(kernel)
        other = self._privileged(kernel)
        target = kernel.clone(kernel.init_process)
        kernel.ptrace_seize(tracer, target)
        with pytest.raises(KernelError, match="already traced"):
            kernel.ptrace_seize(other, target)

    def test_inject_without_seize_rejected(self, kernel):
        tracer = self._privileged(kernel)
        target = kernel.clone(kernel.init_process)
        with pytest.raises(KernelError, match="does not trace"):
            kernel.ptrace_inject_parasite(tracer, target)

    def test_double_inject_rejected(self, kernel):
        tracer = self._privileged(kernel)
        target = kernel.clone(kernel.init_process)
        kernel.ptrace_seize(tracer, target)
        kernel.ptrace_inject_parasite(tracer, target)
        with pytest.raises(KernelError, match="already carries"):
            kernel.ptrace_inject_parasite(tracer, target)


class TestProcfs:
    def test_pagemap_lists_resident(self, kernel):
        child = kernel.clone(kernel.init_process)
        child.address_space.grow_anon("heap", 1.0)
        pages = list(kernel.pagemap(child.pid))
        assert len(pages) == 256  # 1 MiB of 4 KiB pages

    def test_proc_maps_format(self, kernel):
        child = kernel.clone(kernel.init_process)
        child.address_space.grow_anon("heap", 0.1)
        lines = kernel.proc_maps(child.pid)
        assert len(lines) == 1
        assert "anon" in lines[0]
        assert "rss=26p" in lines[0]

    def test_clear_refs(self, kernel):
        child = kernel.clone(kernel.init_process)
        vma = child.address_space.grow_anon("heap", 0.01)
        assert all(p.soft_dirty for p in vma.pages.values())
        kernel.clear_refs(child.pid)
        assert not any(p.soft_dirty for p in vma.pages.values())

    def test_get_unknown_pid(self, kernel):
        with pytest.raises(KernelError, match="ESRCH"):
            kernel.get(31337)

    def test_live_processes(self, kernel):
        a = kernel.clone(kernel.init_process)
        b = kernel.clone(kernel.init_process)
        kernel.kill(a.pid)
        live = kernel.live_processes()
        assert b in live and a not in live
