"""End-to-end telemetry acceptance tests.

Two claims from the issue are pinned down here:

* a traced prebake repetition yields a JSONL trace whose nested spans
  cover bake → checkpoint → store → restore → first-request serve, and
  the ``criu.restore`` span's duration equals the PhaseTracer's
  RTS+APPINIT for the same episode;
* the Prometheus text export round-trips the counters, gauges and
  histogram quantiles the platform/autoscaler path writes.
"""

import pytest

from repro import make_world, obs
from repro.bench.harness import run_startup_experiment
from repro.bench.tracer import PhaseTracer
from repro.core.manager import PrebakeManager
from repro.faas import FaaSPlatform
from repro.functions import MarkdownFunction, NoopFunction, make_app
from repro.obs.cli import summarize
from repro.obs.export import (
    parse_prometheus,
    read_trace_jsonl,
    render_prometheus,
    write_trace_jsonl,
)


class TestRestoreSpanAgreement:
    def test_restore_span_equals_rts_plus_appinit(self):
        """The span and the probe-based tracer must agree exactly: both
        measure execve-exit → runtime.ready on the same sim clock."""
        kernel = make_world(seed=7, observe=True).kernel
        manager = PrebakeManager(kernel)
        app = make_app("markdown")
        manager.deploy(app)
        tracer = PhaseTracer(kernel)
        tracer.start_episode()
        manager.start_replica(app, technique="prebake")
        tracer.stop_episode()
        phases = tracer.breakdown()
        (restore,) = kernel.obs.tracer.find("criu.restore")
        assert restore.duration_ms == pytest.approx(
            phases.rts_ms + phases.appinit_ms, abs=1e-9)
        assert phases.rts_ms == 0.0  # restored processes skip main()


class TestTracedRepetition:
    def test_single_repetition_trace_covers_lifecycle(self, tmp_path):
        sink = []
        summary = run_startup_experiment(
            "markdown", "prebake", repetitions=1, seed=5,
            trace_phases=True, trace_sink=sink,
        )
        path = write_trace_jsonl(tmp_path / "rep.jsonl", sink)
        records = read_trace_jsonl(path)
        assert records == sink

        names = {r["name"] for r in records}
        assert {"bench.repetition", "deploy", "bake", "criu.checkpoint",
                "snapshot.store", "replica.start", "criu.restore",
                "replica.serve"} <= names

        by_id = {r["span"]: r for r in records}
        restore = next(r for r in records if r["name"] == "criu.restore")
        # restore nests under the prebake replica start
        start = by_id[restore["parent"]]
        assert start["name"] == "replica.start"
        assert start["attrs"]["technique"] == "prebake"

        # the restore span agrees with the probe-derived phase breakdown
        phases = summary.samples[0].phases
        assert restore["duration_ms"] == pytest.approx(
            phases.rts_ms + phases.appinit_ms, abs=1e-9)

        # every record is tagged for merging across repetitions
        assert all(r["rep"] == 0 and r["technique"] == "prebake"
                   for r in records)
        assert all(str(r["trace"]).startswith("prebake/markdown/rep0/")
                   for r in records)

        table = summarize(records)
        assert "criu.restore" in table and "replica.serve" in table

    def test_traces_are_deterministic_across_runs(self):
        def run():
            sink = []
            run_startup_experiment("noop", "prebake", repetitions=2,
                                   seed=9, trace_sink=sink)
            return [(r["trace"], r["name"], r["start_ms"], r["duration_ms"])
                    for r in sink]
        assert run() == run()

    def test_unobserved_run_matches_observed_timing(self):
        plain = run_startup_experiment("noop", "prebake", repetitions=2,
                                       seed=3)
        traced = run_startup_experiment("noop", "prebake", repetitions=2,
                                        seed=3, trace_sink=[])
        assert plain.values == traced.values


class TestPlatformMetricsRoundTrip:
    def _platform(self):
        kernel = make_world(seed=11, observe=True).kernel
        platform = FaaSPlatform(kernel)
        platform.register_function(NoopFunction, start_technique="vanilla")
        platform.invoke("noop")
        platform.scale("noop", 3)  # the alert-triggered scale-up action
        return kernel, platform

    def test_autoscaler_path_round_trips(self):
        kernel, platform = self._platform()
        registry = kernel.obs.metrics
        parsed = parse_prometheus(render_prometheus(registry))

        up_key = (("action", "scale-up"), ("function", "noop"))
        assert parsed["autoscaler_actions_total"][up_key] == registry.value(
            "autoscaler_actions_total",
            {"action": "scale-up", "function": "noop"}) == 2.0
        assert parsed["autoscaler_replicas"][(("function", "noop"),)] == 3.0
        assert platform.replica_count("noop") == 3

        start_labels = {"function": "noop", "technique": "vanilla"}
        for q in (0.5, 0.95, 0.99):
            key = tuple(sorted(
                tuple(start_labels.items()) + (("quantile", str(q)),)))
            assert parsed["replica_start_duration_ms"][key] == \
                registry.quantile("replica_start_duration_ms", q, start_labels)
        count_key = tuple(sorted(start_labels.items()))
        assert parsed["replica_start_duration_ms_count"][count_key] == 3.0

    def test_router_and_scale_up_spans_recorded(self):
        kernel, _ = self._platform()
        tracer = kernel.obs.tracer
        assert len(tracer.find("autoscaler.scale_up")) == 2
        (route,) = tracer.find("router.route")
        assert route.attributes["cold_start"] is True


class TestOpenFaasSharedRegistry:
    def test_gateway_metrics_land_in_world_registry(self):
        from repro.faas.openfaas.stack import make_openfaas_stack
        from repro.runtime.base import Request

        kernel = make_world(seed=13, observe=True).kernel
        stack = make_openfaas_stack(kernel)
        assert stack.prometheus.registry is kernel.obs.metrics

        stack.cli.new("md", "java8-criu", MarkdownFunction)
        stack.cli.up("md", initial_replicas=1)
        stack.gateway.invoke("md", Request(body="# T"))

        registry = kernel.obs.metrics
        assert registry.value("gateway_function_invocation_total",
                              {"function_name": "md"}) >= 1.0 or \
            registry.value("gateway_function_invocation_total") >= 1.0
        histogram = registry.histogram("gateway_service_duration_ms",
                                       {"function": "md"})
        assert histogram is not None and histogram.count >= 1
        parsed = parse_prometheus(render_prometheus(registry))
        assert "gateway_service_duration_ms_count" in parsed
