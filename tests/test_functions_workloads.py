"""Tests for the function workloads and registry."""

import pytest

from repro.core.starters import VanillaStarter
from repro.functions import (
    ImageResizerFunction,
    MarkdownFunction,
    NoopFunction,
    SAMPLE_DOCUMENT,
    custom_function,
    make_app,
    registered_names,
)
from repro.functions.base import FunctionApp, register_app
from repro.functions.image_resizer import SOURCE_IMAGE_PATH
from repro.runtime.base import Request


class TestRegistry:
    def test_paper_workloads_registered(self):
        names = registered_names()
        for expected in ("noop", "markdown", "image-resizer",
                         "synthetic-small", "synthetic-medium", "synthetic-big"):
            assert expected in names

    def test_make_app_returns_fresh_instances(self):
        assert make_app("noop") is not make_app("noop")

    def test_make_app_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown function"):
            make_app("nope")

    def test_register_custom(self):
        class Custom(FunctionApp):
            def __init__(self):
                from repro.sim.costmodel import NOOP_COSTS
                super().__init__(NOOP_COSTS)

            def execute(self, runtime, request):
                return "custom", 200

        register_app("test-custom", Custom)
        assert isinstance(make_app("test-custom"), Custom)


class TestNoop:
    def test_returns_empty_200(self, kernel):
        handle = VanillaStarter(kernel).start(NoopFunction())
        response = handle.invoke()
        assert response.status == 200
        assert response.body == ""

    def test_profile_is_paper_noop(self):
        assert NoopFunction().profile.name == "noop"


class TestMarkdown:
    def test_renders_request_body(self, kernel):
        handle = VanillaStarter(kernel).start(MarkdownFunction())
        response = handle.invoke(Request(body="# Hello\n\n- a\n- b"))
        assert "<h1>Hello</h1>" in response.body
        assert response.body.count("<li>") == 2

    def test_default_document_on_empty_body(self, kernel):
        handle = VanillaStarter(kernel).start(MarkdownFunction())
        response = handle.invoke(Request(body=""))
        assert "OpenPiton" in response.body

    def test_sample_document_renders_richly(self, kernel):
        handle = VanillaStarter(kernel).start(MarkdownFunction())
        html = handle.invoke(Request(body=SAMPLE_DOCUMENT)).body
        for fragment in ("<h1>", "<h2>", "<ol>", "<ul>", "<pre>",
                         "<blockquote>", "<hr />", "<a href="):
            assert fragment in html

    def test_non_string_body_uses_default(self, kernel):
        handle = VanillaStarter(kernel).start(MarkdownFunction())
        assert handle.invoke(Request(body={"not": "str"})).ok


class TestImageResizer:
    def test_source_image_created_in_vfs(self, kernel):
        VanillaStarter(kernel).start(ImageResizerFunction())
        source = kernel.fs.lookup(SOURCE_IMAGE_PATH)
        assert source.size == 1024 * 1024  # "a 1MB ... image"

    def test_resize_response_is_ten_percent(self, kernel):
        handle = VanillaStarter(kernel).start(ImageResizerFunction())
        body = handle.invoke().body
        # Working copy is 344x144; 10% → 34x14.
        assert body["width"] == 34
        assert body["height"] == 14

    def test_uninitialized_resizer_errors(self, kernel):
        app = ImageResizerFunction()
        # Execute without init (bypasses APPINIT) → 500, not crash.
        body, status = app.execute(None, Request())
        assert status == 500

    @pytest.mark.slow
    def test_full_scale_resize_matches_paper_geometry(self):
        thumb = ImageResizerFunction.full_scale_resize()
        assert (thumb.width, thumb.height) == (344, 144)


class TestSynthetic:
    def test_custom_function_sizes(self):
        app = custom_function(classes=42, total_kib=100.0)
        assert len(app.classes) == 42
        assert app.profile.startup_metric == "first_response"

    def test_profile_without_classes_rejected(self):
        from repro.functions.synthetic import SyntheticFunction
        from repro.sim.costmodel import NOOP_COSTS
        with pytest.raises(ValueError, match="no classes"):
            SyntheticFunction(NOOP_COSTS)

    def test_response_reports_loaded_classes(self, kernel):
        app = make_app("synthetic-small")
        handle = VanillaStarter(kernel).start(app)
        body = handle.invoke().body
        assert body["classes_loaded"] == 374

    def test_artifact_size_includes_classes(self, kernel):
        small = make_app("synthetic-small")
        big = make_app("synthetic-big")
        assert big.artifact_size() - small.artifact_size() == pytest.approx(
            (41.0 - 2.8) * 1024 * 1024, rel=0.01)
