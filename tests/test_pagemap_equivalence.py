"""Fast/slow pagemap backend equivalence.

The vectorized :class:`~repro.osproc.memory.VMA` replaced the
dict-of-Page implementation that now survives as
:class:`~repro.osproc.memory.SlowVMA` (``REPRO_SLOW_PAGEMAP=1``). The
two must be observationally identical — same residency, same tags,
same dump/diff/working-set results — on *any* operation sequence, and
whole experiments must render byte-identically under either backend.
"""

import os
import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osproc.memory import (
    PAGE_SIZE,
    SlowVMA,
    VMA,
    VMAKind,
    pagemap_backend,
    set_slow_pagemap,
    slow_pagemap_enabled,
)

PAGES = 64

# One mutation step against a 64-page VMA. Indices/counts are kept in
# range: error behaviour is pinned separately, the property is about
# state evolution.
_tags = st.sampled_from(["", "a", "b", "heap:x", "text:/bin/app"])
_ops = st.one_of(
    st.tuples(st.just("touch"),
              st.integers(min_value=0, max_value=PAGES - 1),
              _tags, st.booleans()),
    st.tuples(st.just("touch_range"),
              st.integers(min_value=0, max_value=PAGES - 1),
              st.integers(min_value=0, max_value=PAGES),
              _tags),
    st.tuples(st.just("clear_soft_dirty")),
)


def _apply(vma, op):
    if op[0] == "touch":
        _, index, tag, dirty = op
        vma.touch(index, content_tag=tag, dirty=dirty)
    elif op[0] == "touch_range":
        _, first, count, tag = op
        count = min(count, PAGES - first)
        if count > 0:
            vma.touch_range(first, count, content_tag=tag)
    else:
        vma.clear_soft_dirty()


def _observe(vma):
    """Everything checkpoint/diff/restore can see of a VMA."""
    return {
        "resident_pages": vma.resident_pages,
        "resident_bytes": vma.resident_bytes,
        "resident_indices": vma.resident_indices.tolist(),
        "pages": {
            index: (page.content_tag, page.dirty, page.soft_dirty)
            for index, page in vma.pages.items()
        },
        "dump_full": vma.dump_pages(),
        "dump_incremental": vma.dump_pages(incremental=True),
        "touched": vma.touched_indices().tolist(),
        "touched_floor": vma.touched_indices(floor=True).tolist(),
    }


class TestBackendEquivalence:
    @given(ops=st.lists(_ops, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_any_op_sequence_observes_identically(self, ops):
        fast = VMA(start=0, length=PAGES * PAGE_SIZE, kind=VMAKind.ANON)
        slow = SlowVMA(start=0, length=PAGES * PAGE_SIZE, kind=VMAKind.ANON)
        for op in ops:
            _apply(fast, op)
            _apply(slow, op)
        assert _observe(fast) == _observe(slow)

    @given(ops=st.lists(_ops, min_size=1, max_size=20),
           dirty=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_populate_pages_equivalence(self, ops, dirty):
        source = VMA(start=0, length=PAGES * PAGE_SIZE, kind=VMAKind.ANON)
        for op in ops:
            _apply(source, op)
        indices, tags = source.dump_pages()
        fast = VMA(start=0, length=PAGES * PAGE_SIZE, kind=VMAKind.ANON)
        slow = SlowVMA(start=0, length=PAGES * PAGE_SIZE, kind=VMAKind.ANON)
        fast.populate_pages(indices, tags, dirty=dirty)
        slow.populate_pages(indices, tags, dirty=dirty)
        assert _observe(fast) == _observe(slow)

    def test_iter_pages_orders_by_index(self):
        for backend in (VMA, SlowVMA):
            vma = backend(start=0, length=PAGES * PAGE_SIZE,
                          kind=VMAKind.ANON)
            for index in (9, 3, 41, 0):
                vma.touch(index, content_tag=f"p{index}")
            assert [p.index for p in vma.iter_pages()] == [0, 3, 9, 41]


class TestBackendSwitch:
    @pytest.mark.skipif(os.environ.get("REPRO_SLOW_PAGEMAP", "")
                        not in ("", "0"),
                        reason="suite running under the reference backend")
    def test_default_backend_is_vectorized(self):
        assert not slow_pagemap_enabled()
        assert pagemap_backend() is VMA

    def test_switch_is_reversible_and_honoured_by_mmap(self):
        from repro.osproc.memory import AddressSpace
        entry = slow_pagemap_enabled()
        try:
            set_slow_pagemap(True)
            assert pagemap_backend() is SlowVMA
            space = AddressSpace()
            vma = space.mmap(length=PAGE_SIZE, kind=VMAKind.ANON)
            assert isinstance(vma, SlowVMA)
            set_slow_pagemap(False)
            space = AddressSpace()
            assert isinstance(
                space.mmap(length=PAGE_SIZE, kind=VMAKind.ANON), VMA)
        finally:
            set_slow_pagemap(entry)


def _render_in_subprocess(snippet: str, slow: bool) -> str:
    """Run a render snippet in a fresh interpreter, honouring the
    ``REPRO_SLOW_PAGEMAP`` env contract.

    Fresh processes, not in-process switching: image ids and similar
    process-global counters advance across runs, so only independent
    interpreters can be compared byte for byte.
    """
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    env["REPRO_SLOW_PAGEMAP"] = "1" if slow else ""
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", snippet],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestExperimentByteIdentity:
    """Whole experiments must not notice which backend is active."""

    def test_fig3_identical_under_both_backends(self):
        snippet = ("from repro.bench.figures import figure3; "
                   "print(figure3(repetitions=3, seed=11).render())")
        assert (_render_in_subprocess(snippet, slow=False)
                == _render_in_subprocess(snippet, slow=True))

    def test_restore_sweep_identical_under_both_backends(self):
        snippet = (
            "from repro.bench.restore_sweep import restore_sweep; "
            "print(restore_sweep(repetitions=6, seed=11).render())")
        assert (_render_in_subprocess(snippet, slow=False)
                == _render_in_subprocess(snippet, slow=True))
