"""Tests for the cross-runtime workloads (§7 future work)."""

import pytest

from repro.core.manager import PrebakeManager
from repro.core.policy import AfterWarmup
from repro.core.starters import VanillaStarter
from repro.functions import (
    NodeMarkdownFunction,
    NodeNoopFunction,
    PythonMarkdownFunction,
    PythonNoopFunction,
    make_app,
)
from repro.runtime.base import Request
from repro.runtime.nodejs import NodeJSRuntime
from repro.runtime.python_rt import CPythonRuntime


class TestRegistration:
    @pytest.mark.parametrize("name,cls", [
        ("py-markdown", PythonMarkdownFunction),
        ("node-markdown", NodeMarkdownFunction),
        ("py-noop", PythonNoopFunction),
        ("node-noop", NodeNoopFunction),
    ])
    def test_registered(self, name, cls):
        assert isinstance(make_app(name), cls)


class TestVanillaStart:
    def test_python_markdown_runs_on_cpython(self, kernel):
        handle = VanillaStarter(kernel).start(PythonMarkdownFunction())
        assert isinstance(handle.runtime, CPythonRuntime)
        response = handle.invoke(Request(body="# Py"))
        assert "<h1>Py</h1>" in response.body

    def test_node_markdown_runs_on_node(self, kernel):
        handle = VanillaStarter(kernel).start(NodeMarkdownFunction())
        assert isinstance(handle.runtime, NodeJSRuntime)
        assert handle.invoke(Request(body="*x*")).ok

    def test_runtime_boot_ordering(self, quiet_kernel):
        """CPython boots fastest, Node in between, JVM slowest."""
        from repro import make_world
        from repro.sim.costmodel import DEFAULT_COST_MODEL
        startups = {}
        for name in ("py-noop", "node-noop", "noop"):
            world = make_world(seed=3,
                               costs=DEFAULT_COST_MODEL.with_noise_sigma(0.0))
            handle = VanillaStarter(world.kernel).start(make_app(name))
            startups[name] = handle.startup_ms("ready")
        assert startups["py-noop"] < startups["node-noop"] < startups["noop"]


class TestPrebakeAcrossRuntimes:
    @pytest.mark.parametrize("name", ["py-markdown", "node-markdown"])
    def test_bake_and_restore(self, kernel, name):
        manager = PrebakeManager(kernel)
        app = make_app(name)
        report = manager.deploy(app, policy=AfterWarmup(1))
        assert report.image.runtime_state["kind"] == app.runtime_kind
        handle = manager.start_replica(app, technique="prebake",
                                       policy=AfterWarmup(1))
        assert handle.runtime.ready
        assert handle.invoke(Request(body="# r")).ok

    def test_prebake_beats_vanilla_everywhere(self, kernel):
        from repro.bench.harness import run_startup_experiment
        for name in ("py-markdown", "node-markdown"):
            vanilla = run_startup_experiment(name, "vanilla", repetitions=5,
                                             seed=4, metric="first_response")
            warm = run_startup_experiment(name, "prebake",
                                          policy=AfterWarmup(1),
                                          repetitions=5, seed=4,
                                          metric="first_response")
            assert warm.median_ms < vanilla.median_ms

    def test_restored_python_keeps_import_state(self, kernel):
        manager = PrebakeManager(kernel)
        app = make_app("py-markdown")
        manager.deploy(app, policy=AfterWarmup(1))
        handle = manager.start_replica(app, technique="prebake",
                                       policy=AfterWarmup(1))
        assert handle.runtime.imported_modules == len(app.classes)
