"""Tests for the virtual-memory model, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osproc.memory import (
    PAGE_SIZE,
    AddressSpace,
    MemoryError_,
    VMA,
    VMAKind,
)


class TestVMA:
    def test_rejects_unaligned_length(self):
        with pytest.raises(MemoryError_):
            VMA(start=0, length=PAGE_SIZE + 1, kind=VMAKind.ANON)

    def test_rejects_zero_length(self):
        with pytest.raises(MemoryError_):
            VMA(start=0, length=0, kind=VMAKind.ANON)

    def test_rejects_unaligned_start(self):
        with pytest.raises(MemoryError_):
            VMA(start=123, length=PAGE_SIZE, kind=VMAKind.ANON)

    def test_file_vma_requires_path(self):
        with pytest.raises(MemoryError_):
            VMA(start=0, length=PAGE_SIZE, kind=VMAKind.FILE)

    def test_touch_makes_page_resident(self):
        vma = VMA(start=0, length=4 * PAGE_SIZE, kind=VMAKind.ANON)
        vma.touch(2, content_tag="x")
        assert vma.resident_pages == 1
        assert vma.pages[2].content_tag == "x"

    def test_touch_out_of_range_rejected(self):
        vma = VMA(start=0, length=2 * PAGE_SIZE, kind=VMAKind.ANON)
        with pytest.raises(MemoryError_):
            vma.touch(2)
        with pytest.raises(MemoryError_):
            vma.touch(-1)

    def test_touch_is_idempotent_for_residency(self):
        vma = VMA(start=0, length=2 * PAGE_SIZE, kind=VMAKind.ANON)
        vma.touch(0)
        vma.touch(0)
        assert vma.resident_pages == 1

    def test_touch_range(self):
        vma = VMA(start=0, length=8 * PAGE_SIZE, kind=VMAKind.ANON)
        vma.touch_range(2, 3)
        assert sorted(vma.pages) == [2, 3, 4]

    def test_overlaps(self):
        a = VMA(start=0, length=4 * PAGE_SIZE, kind=VMAKind.ANON)
        b = VMA(start=2 * PAGE_SIZE, length=4 * PAGE_SIZE, kind=VMAKind.ANON)
        c = VMA(start=4 * PAGE_SIZE, length=PAGE_SIZE, kind=VMAKind.ANON)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)


class TestAddressSpace:
    def test_mmap_auto_address_no_overlap(self):
        space = AddressSpace()
        a = space.mmap(10 * PAGE_SIZE, VMAKind.ANON)
        b = space.mmap(10 * PAGE_SIZE, VMAKind.ANON)
        assert not a.overlaps(b)

    def test_mmap_rounds_length_up(self):
        space = AddressSpace()
        vma = space.mmap(PAGE_SIZE + 1, VMAKind.ANON)
        assert vma.length == 2 * PAGE_SIZE

    def test_explicit_overlap_rejected(self):
        space = AddressSpace()
        space.mmap(4 * PAGE_SIZE, VMAKind.ANON, start=0x1000_0000)
        with pytest.raises(MemoryError_, match="overlaps"):
            space.mmap(4 * PAGE_SIZE, VMAKind.ANON, start=0x1000_0000 + PAGE_SIZE)

    def test_auto_address_avoids_explicit_mappings(self):
        """Regression: restore places VMAs explicitly; later anonymous
        growth must not collide with them."""
        space = AddressSpace()
        space.mmap(100 * PAGE_SIZE, VMAKind.ANON, start=0x7F00_0000_0000)
        grown = space.grow_anon("ext", 1.0)
        assert grown.start >= 0x7F00_0000_0000 + 100 * PAGE_SIZE

    def test_munmap_removes(self):
        space = AddressSpace()
        vma = space.mmap(PAGE_SIZE, VMAKind.ANON)
        space.munmap(vma)
        assert space.vmas == ()

    def test_munmap_unknown_rejected(self):
        space = AddressSpace()
        foreign = VMA(start=0, length=PAGE_SIZE, kind=VMAKind.ANON)
        with pytest.raises(MemoryError_):
            space.munmap(foreign)

    def test_find_by_address(self):
        space = AddressSpace()
        vma = space.mmap(4 * PAGE_SIZE, VMAKind.STACK, start=0x2000_0000)
        assert space.find(0x2000_0000 + PAGE_SIZE) is vma
        assert space.find(0x2000_0000 + 4 * PAGE_SIZE) is None

    def test_find_by_label(self):
        space = AddressSpace()
        vma = space.mmap(PAGE_SIZE, VMAKind.ANON, label="heap")
        assert space.find_by_label("heap") is vma
        assert space.find_by_label("missing") is None

    def test_rss_counts_only_resident(self):
        space = AddressSpace()
        vma = space.mmap(100 * PAGE_SIZE, VMAKind.ANON)
        assert space.rss_bytes == 0
        vma.touch_range(0, 10)
        assert space.rss_bytes == 10 * PAGE_SIZE
        assert space.mapped_bytes == 100 * PAGE_SIZE

    def test_grow_anon_populates(self):
        space = AddressSpace()
        space.grow_anon("heap", 2.0)
        assert space.rss_mib == pytest.approx(2.0)

    def test_clear_removes_everything(self):
        space = AddressSpace()
        space.grow_anon("a", 1.0)
        space.grow_anon("b", 1.0)
        space.clear()
        assert space.rss_bytes == 0
        assert space.vmas == ()

    def test_iter_resident_address_order(self):
        space = AddressSpace()
        high = space.mmap(2 * PAGE_SIZE, VMAKind.ANON, start=0x9000_0000)
        low = space.mmap(2 * PAGE_SIZE, VMAKind.ANON, start=0x1000_0000)
        high.touch(1)
        low.touch(0)
        order = [(vma.start, page.index) for vma, page in space.iter_resident()]
        assert order == [(0x1000_0000, 0), (0x9000_0000, 1)]

    def test_clear_soft_dirty(self):
        space = AddressSpace()
        vma = space.mmap(2 * PAGE_SIZE, VMAKind.ANON, populate=True)
        assert all(p.soft_dirty for p in vma.pages.values())
        space.clear_soft_dirty()
        assert not any(p.soft_dirty for p in vma.pages.values())
        vma.touch(0)
        assert vma.pages[0].soft_dirty


class TestAddressSpaceProperties:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=64),
                          min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_auto_mappings_never_overlap(self, sizes):
        space = AddressSpace()
        vmas = [space.mmap(n * PAGE_SIZE, VMAKind.ANON) for n in sizes]
        for i, a in enumerate(vmas):
            for b in vmas[i + 1:]:
                assert not a.overlaps(b)

    @given(pages=st.lists(st.integers(min_value=0, max_value=63),
                          min_size=0, max_size=100))
    @settings(max_examples=50)
    def test_rss_equals_distinct_touched_pages(self, pages):
        space = AddressSpace()
        vma = space.mmap(64 * PAGE_SIZE, VMAKind.ANON)
        for index in pages:
            vma.touch(index)
        assert space.rss_bytes == len(set(pages)) * PAGE_SIZE

    @given(mib=st.floats(min_value=0.01, max_value=64.0))
    @settings(max_examples=30)
    def test_grow_anon_rss_close_to_request(self, mib):
        space = AddressSpace()
        space.grow_anon("x", mib)
        # Within one page of the request.
        assert abs(space.rss_mib - mib) <= PAGE_SIZE / (1024 * 1024)
