"""Tests for the pipelined restore engine (PR 5).

Covers the cost-model pipeline plan (with the hypothesis properties the
issue pins: pipelined <= serial everywhere, exact equality at one
worker), the hot-chunk cache policies, Merkle-tree layer verification
and subtree-only repair, the span-leak fix on fault-injected pipelined
restores, and the parallel bench harness's serial/parallel determinism.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, make_world
from repro.core.policy import AfterReady
from repro.core.store import SnapshotStore
from repro.criu.checkpoint import CheckpointEngine
from repro.criu.chunkcache import (
    FREQ_OVER_SIZE,
    LRU,
    HotChunkCache,
    make_cache,
)
from repro.criu.merkle import DEFAULT_ARITY, ImageMerkle, MerkleTree
from repro.criu.pagestore import image_chunk_index
from repro.criu.restore import RestoreEngine
from repro.faults import FaultPlan
from repro.faults.errors import RestoreFailed
from repro.functions import make_app
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import RESTORE_PIPELINE_RAMP, install as install_profiler
from repro.obs.slo import CHUNK_CACHE_HIT_RATE, evaluate_slos
from repro.sim.costmodel import DEFAULT_COST_MODEL


# ---------------------------------------------------------------------------
# Cost-model pipeline plan
# ---------------------------------------------------------------------------


class TestPipelinePlan:
    def test_single_worker_no_cache_is_exactly_serial(self):
        plan = DEFAULT_COST_MODEL.plan_restore_pipeline(
            42.8, workers=1, chunk_count=400)
        # Bit-identical, not approximately: the default restore path
        # must reproduce the committed fig3-7/table1 charges.
        assert plan.total_ms == 42.8
        assert plan.serial_ms == 42.8
        assert not plan.pipelined

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            DEFAULT_COST_MODEL.plan_restore_pipeline(10.0, workers=0)

    @given(
        pages_ms=st.floats(min_value=0.0, max_value=10_000.0),
        workers=st.integers(min_value=1, max_value=64),
        chunk_count=st.integers(min_value=1, max_value=5_000),
        cached_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200)
    def test_pipelined_never_slower_than_serial(self, pages_ms, workers,
                                                chunk_count, cached_fraction):
        """The issue's property: for every (workers, chunk count,
        bandwidth) point the overlapped plan charges at most the serial
        cost, and exactly the serial cost at one worker with no hits."""
        plan = DEFAULT_COST_MODEL.plan_restore_pipeline(
            pages_ms, workers=workers, chunk_count=chunk_count,
            cached_fraction=cached_fraction)
        assert plan.total_ms <= plan.serial_ms + 1e-9
        assert plan.total_ms <= pages_ms + 1e-9
        assert plan.total_ms >= 0.0
        if workers == 1 and cached_fraction == 0.0:
            assert plan.total_ms == pages_ms

    @given(
        pages_ms=st.floats(min_value=1.0, max_value=1_000.0),
        workers=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100)
    def test_more_workers_never_hurt(self, pages_ms, workers):
        narrow = DEFAULT_COST_MODEL.plan_restore_pipeline(
            pages_ms, workers=workers, chunk_count=64)
        wide = DEFAULT_COST_MODEL.plan_restore_pipeline(
            pages_ms, workers=workers + 1, chunk_count=64)
        assert wide.total_ms <= narrow.total_ms + 1e-9

    def test_overlap_saved_is_the_serial_gap(self):
        plan = DEFAULT_COST_MODEL.plan_restore_pipeline(
            100.0, workers=4, chunk_count=64)
        assert plan.overlap_saved_ms == pytest.approx(
            plan.serial_ms - plan.total_ms)
        assert plan.pipelined


# ---------------------------------------------------------------------------
# Restore engine integration
# ---------------------------------------------------------------------------


def _big_image(kernel, mib=64.0):
    proc = kernel.clone(kernel.init_process, comm="fn")
    proc.address_space.grow_anon("heap", mib, content_tag="heap")
    return CheckpointEngine(kernel).dump(proc, leave_running=False)


class TestRestoreEnginePipeline:
    def test_default_engine_matches_explicit_single_worker(self):
        """pipeline_workers=1 must be byte-identical to the legacy
        engine: same clock advance from the same seed."""
        durations = []
        for engine_kwargs in ({}, {"pipeline_workers": 1}):
            world = make_world(seed=77)
            kernel = world.kernel
            image = _big_image(kernel)
            engine = RestoreEngine(kernel, **engine_kwargs)
            before = kernel.clock.now
            engine.restore(image)
            durations.append(kernel.clock.now - before)
        assert durations[0] == durations[1]

    def test_pipelined_restore_is_faster(self, quiet_kernel):
        image = _big_image(quiet_kernel)
        serial = RestoreEngine(quiet_kernel)
        wide = RestoreEngine(quiet_kernel, pipeline_workers=4)
        before = quiet_kernel.clock.now
        serial.restore(image)
        serial_ms = quiet_kernel.clock.now - before
        before = quiet_kernel.clock.now
        wide.restore(image)
        wide_ms = quiet_kernel.clock.now - before
        assert wide_ms < serial_ms

    def test_warm_cache_restore_is_faster_than_cold(self, quiet_kernel):
        image = _big_image(quiet_kernel)
        engine = RestoreEngine(quiet_kernel, pipeline_workers=4,
                               cache_policy=FREQ_OVER_SIZE)
        before = quiet_kernel.clock.now
        engine.restore(image)
        cold_ms = quiet_kernel.clock.now - before
        before = quiet_kernel.clock.now
        engine.restore(image)
        warm_ms = quiet_kernel.clock.now - before
        assert warm_ms < cold_ms
        assert engine.chunk_cache.stats.hits > 0

    def test_invalid_worker_count_rejected(self, kernel):
        with pytest.raises(ValueError, match="pipeline_workers"):
            RestoreEngine(kernel, pipeline_workers=0)

    def test_profiler_records_pipeline_ramp(self):
        world = make_world(
            seed=5, costs=DEFAULT_COST_MODEL.with_noise_sigma(0.0))
        kernel = world.kernel
        profiler = install_profiler(kernel)
        image = _big_image(kernel)
        profiler.reset()   # drop the dump's samples; measure the restore
        before = kernel.clock.now
        RestoreEngine(kernel, pipeline_workers=4).restore(image)
        charged = kernel.clock.now - before
        samples = profiler.reset()
        ramp = [s for s in samples if s.phase == RESTORE_PIPELINE_RAMP]
        assert len(ramp) == 1
        assert ramp[0].attrs["workers"] == 4
        # The restore sub-phases still account for the whole charge
        # minus the criu spawn (clone+exec recorded separately).
        restore_ms = sum(s.duration_ms for s in samples
                         if s.phase.startswith("restore."))
        spawn_ms = sum(s.duration_ms for s in samples
                       if not s.phase.startswith("restore."))
        assert restore_ms + spawn_ms == pytest.approx(charged)


class TestSpanLeakRegression:
    def test_failed_pipelined_restore_leaves_no_open_spans(self):
        """The issue's regression: with restore.fail armed, the
        pipeline-worker spans opened for an N-worker restore must be
        closed when the fault unwinds the attempt."""
        world = make_world(seed=9, observe=True)
        kernel = world.kernel
        faults.install(kernel, FaultPlan.of(restore_fail=1.0))
        image = _big_image(kernel, mib=8.0)
        engine = RestoreEngine(kernel, pipeline_workers=4)
        with pytest.raises(RestoreFailed):
            engine.restore(image)
        assert kernel.obs.tracer.open_spans() == []
        worker_spans = [s for s in kernel.obs.tracer.spans
                        if s.name == "restore.pipeline-worker"]
        assert len(worker_spans) == 4
        assert all(s.end_ms is not None for s in worker_spans)


# ---------------------------------------------------------------------------
# Hot-chunk cache
# ---------------------------------------------------------------------------


class TestHotChunkCache:
    def test_hits_after_admission(self):
        cache = HotChunkCache(capacity_bytes=1024, policy=LRU)
        assert cache.lookup("a", 100) is False
        assert cache.lookup("a", 100) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_lru_evicts_least_recent(self):
        cache = HotChunkCache(capacity_bytes=250, policy=LRU)
        cache.lookup("a", 100)
        cache.lookup("b", 100)
        cache.lookup("a", 100)            # refresh a
        cache.lookup("c", 100)            # evicts b, the stale one
        assert cache.contains("a")
        assert cache.contains("c")
        assert not cache.contains("b")
        assert cache.stats.evictions == 1

    def test_freq_over_size_protects_hot_small_chunks(self):
        cache = HotChunkCache(capacity_bytes=300, policy=FREQ_OVER_SIZE)
        for _ in range(5):
            cache.lookup("hot-small", 100)
        # A big one-shot chunk scores 1/250 < hot-small's 5/100: the
        # admission filter keeps it out instead of evicting the hot one.
        assert cache.lookup("cold-big", 250) is False
        assert cache.contains("hot-small")
        assert not cache.contains("cold-big")
        assert cache.stats.admission_rejects >= 1

    def test_oversized_chunk_never_admitted(self):
        cache = HotChunkCache(capacity_bytes=100)
        cache.lookup("huge", 500)
        assert not cache.contains("huge")
        assert cache.used_bytes == 0

    def test_deterministic_across_instances(self):
        def drive(cache):
            outcomes = []
            for key, size in [("a", 60), ("b", 60), ("a", 60),
                              ("c", 60), ("b", 60), ("a", 60)]:
                outcomes.append(cache.lookup(key, size))
            return outcomes, sorted(cache._resident)

        first = drive(HotChunkCache(capacity_bytes=128, policy=FREQ_OVER_SIZE))
        second = drive(HotChunkCache(capacity_bytes=128, policy=FREQ_OVER_SIZE))
        assert first == second

    def test_make_cache_knob_values(self):
        assert make_cache(None) is None
        assert make_cache("none") is None
        assert make_cache("off") is None
        assert make_cache(FREQ_OVER_SIZE).policy == FREQ_OVER_SIZE
        assert make_cache(LRU).policy == LRU
        with pytest.raises(ValueError, match="policy"):
            make_cache("clock")


# ---------------------------------------------------------------------------
# Merkle verification
# ---------------------------------------------------------------------------


class TestMerkleTree:
    def test_update_leaf_changes_and_restores_root(self):
        leaves = [f"leaf-{i}" for i in range(100)]
        tree = MerkleTree(leaves)
        sealed = tree.root
        tree.update_leaf(17, "corrupted")
        assert tree.root != sealed
        tree.update_leaf(17, "leaf-17")
        assert tree.root == sealed

    @given(leaf_count=st.integers(min_value=1, max_value=2_000),
           index_seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60)
    def test_update_touches_only_the_leaf_path(self, leaf_count, index_seed):
        """The issue's sublinear-repair property: folding one repaired
        leaf back in costs depth combines, not a rebuild."""
        tree = MerkleTree([f"leaf-{i}" for i in range(leaf_count)])
        build_ops = tree.hash_ops
        ops = tree.update_leaf(index_seed % leaf_count, "repaired")
        assert ops == tree.depth
        if leaf_count > DEFAULT_ARITY:
            assert ops < build_ops  # strictly cheaper than resealing

    def test_verify_leaf_is_exact(self):
        tree = MerkleTree(["a", "b", "c"])
        assert tree.verify_leaf(1, "b")
        assert not tree.verify_leaf(1, "x")


class TestImageMerkleOnStore:
    def _baked(self, kernel, name="markdown"):
        from repro.core.bake import Prebaker
        store = SnapshotStore()
        report = Prebaker(kernel, store).bake(make_app(name),
                                              policy=AfterReady())
        return store, report

    def test_store_put_builds_a_sealed_tree(self, kernel):
        store, report = self._baked(kernel)
        merkle = store.merkle(report.key)
        assert merkle is not None
        assert merkle.root_matches_seal()
        assert merkle.leaf_count > 0

    def test_targeted_repair_reverifies_only_the_damaged_subtree(self, kernel):
        store, report = self._baked(kernel)
        image = store.peek(report.key)
        image.tamper(pages=3)
        repaired = store.repair(report.key)
        stats = store.last_repair_stats
        assert repaired >= 1
        assert stats.targeted
        assert stats.verified_ok is True
        # Sublinearity in the tested currency: repairing a handful of
        # windows costs far fewer combines than one full reseal.
        merkle = store.merkle(report.key)
        rebuild_ops = ImageMerkle.from_layered(
            store.layered(report.key)).hash_ops
        assert stats.hash_ops < rebuild_ops
        store.peek(report.key).verify_integrity()
        assert not image.dirty_pages

    def test_meta_corruption_falls_back_to_full_scan(self, kernel):
        store, report = self._baked(kernel)
        image = store.peek(report.key)
        image.tamper(pages=2)
        image.dirty_meta = True   # identity corruption: no page hints help
        repaired = store.repair(report.key)
        assert repaired >= 1
        assert not store.last_repair_stats.targeted
        store.peek(report.key).verify_integrity()

    def test_repair_parity_with_legacy_full_scan(self, kernel):
        """Targeted repair must fix exactly what the full scan would."""
        runs = []
        for force_full in (False, True):
            world = make_world(seed=31)
            from repro.core.bake import Prebaker
            store = SnapshotStore()
            report = Prebaker(world.kernel, store).bake(
                make_app("markdown"), policy=AfterReady())
            image = store.peek(report.key)
            image.tamper(pages=4)
            if force_full:
                image.dirty_pages.clear()   # drop the hints -> full scan
            runs.append(store.repair(report.key))
            assert store.last_repair_stats.targeted is not force_full
            store.peek(report.key).verify_integrity()
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Memoization
# ---------------------------------------------------------------------------


class TestMemoization:
    def test_page_content_key_is_cached(self):
        from repro.osproc.memory import page_content_key
        page_content_key.cache_clear()
        first = page_content_key("tag-x")
        hits_before = page_content_key.cache_info().hits
        assert page_content_key("tag-x") == first
        assert page_content_key.cache_info().hits == hits_before + 1

    def test_image_chunk_index_memoized_until_generation_bump(self, kernel):
        image = _big_image(kernel, mib=4.0)
        first = image_chunk_index(image)
        assert image_chunk_index(image) is first
        image.generation += 1
        assert image_chunk_index(image) is not first
        assert image_chunk_index(image) == first  # same content, recomputed


# ---------------------------------------------------------------------------
# SLO wiring
# ---------------------------------------------------------------------------


class TestChunkCacheSLO:
    def test_no_data_is_healthy(self):
        statuses = evaluate_slos(MetricsRegistry(), [CHUNK_CACHE_HIT_RATE])
        assert statuses[0].healthy
        assert statuses[0].burn_rate is None

    def test_cache_hits_feed_the_slo(self):
        world = make_world(seed=13, observe=True)
        kernel = world.kernel
        image = _big_image(kernel, mib=4.0)
        engine = RestoreEngine(kernel, cache_policy=FREQ_OVER_SIZE)
        engine.restore(image)
        engine.restore(image)
        registry = kernel.obs.metrics
        assert registry.value("chunk_cache_lookups_total") > 0
        status = evaluate_slos(registry, [CHUNK_CACHE_HIT_RATE])[0]
        assert status.burn_rate is not None


# ---------------------------------------------------------------------------
# Parallel bench harness
# ---------------------------------------------------------------------------


class TestHarnessWorkers:
    def test_parallel_samples_identical_to_serial(self):
        from repro.bench.harness import run_startup_experiment
        serial = run_startup_experiment("noop", "prebake",
                                        repetitions=4, seed=7)
        fanned = run_startup_experiment("noop", "prebake",
                                        repetitions=4, seed=7, workers=3)
        assert fanned.values == serial.values
        assert [s.repetition for s in fanned.samples] == [0, 1, 2, 3]

    def test_workers_must_be_positive(self):
        from repro.bench.harness import (
            run_service_experiment,
            run_startup_experiment,
        )
        with pytest.raises(ValueError, match="workers"):
            run_startup_experiment("noop", "vanilla", repetitions=1, workers=0)
        with pytest.raises(ValueError, match="workers"):
            run_service_experiment("noop", "vanilla", requests=1, workers=0)

    def test_callable_function_falls_back_to_serial(self):
        from repro.bench.harness import run_startup_experiment
        factory = lambda: make_app("noop")  # noqa: E731 - unpicklable on purpose
        serial = run_startup_experiment(factory, "vanilla",
                                        repetitions=2, seed=3)
        fanned = run_startup_experiment(factory, "vanilla",
                                        repetitions=2, seed=3, workers=4)
        assert fanned.values == serial.values


# ---------------------------------------------------------------------------
# The X8 sweep and the acceptance criterion
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestRestorePipelineSweep:
    def test_image_resizer_meets_the_improvement_bar(self):
        from repro.bench.restore_sweep import restore_pipeline_sweep
        result = restore_pipeline_sweep(
            repetitions=6, seed=42,
            workers_grid=(1, 4),
            cache_policies=("none", "freq-over-size"),
            functions=("image-resizer",))
        cell = result.cell("image-resizer", 4, "freq-over-size")
        assert cell.improvement_pct >= 25.0
        assert cell.hit_ratio > 0.5
        assert result.render()
