"""Tests for the Prometheus exposition format and image diffing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.criu.checkpoint import CheckpointEngine
from repro.criu.imgdiff import diff_images
from repro.faas.openfaas.exposition import parse_exposition, render_exposition
from repro.faas.openfaas.prometheus import PrometheusLite


class TestExposition:
    def test_render_counter_and_gauge(self):
        prom = PrometheusLite()
        prom.inc("requests_total", 3, labels={"fn": "md"})
        prom.set_gauge("replicas", 2.5, labels={"fn": "md"})
        text = render_exposition(prom)
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{fn="md"} 3' in text
        assert 'replicas{fn="md"} 2.5' in text

    def test_render_empty_registry(self):
        assert render_exposition(PrometheusLite()) == ""

    def test_unlabelled_series(self):
        prom = PrometheusLite()
        prom.inc("up")
        assert "up 1" in render_exposition(prom)

    def test_label_escaping(self):
        prom = PrometheusLite()
        prom.inc("m", labels={"path": 'a"b\\c'})
        text = render_exposition(prom)
        assert '\\"' in text and "\\\\" in text
        parsed = parse_exposition(text)
        labelset = next(iter(parsed["m"]))
        assert dict(labelset)["path"] == 'a"b\\c'

    def test_roundtrip(self):
        prom = PrometheusLite()
        prom.inc("hits", 7, labels={"fn": "a", "code": "200"})
        prom.inc("hits", 2, labels={"fn": "b", "code": "200"})
        prom.set_gauge("load", 0.75)
        parsed = parse_exposition(render_exposition(prom))
        assert parsed["hits"][(("code", "200"), ("fn", "a"))] == 7
        assert parsed["load"][()] == 0.75

    def test_parse_skips_comments_and_blanks(self):
        parsed = parse_exposition("# HELP x\n\nx 4\n")
        assert parsed["x"][()] == 4.0

    @pytest.mark.parametrize("bad", [
        "justonetoken",
        'm{unquoted=x} 1',
        "m notanumber",
    ])
    def test_parse_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_deterministic_ordering(self):
        prom = PrometheusLite()
        prom.inc("b_metric")
        prom.inc("a_metric")
        text = render_exposition(prom)
        assert text.index("a_metric") < text.index("b_metric")

    @given(value=st.floats(min_value=0, max_value=1e9,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=50)
    def test_values_roundtrip(self, value):
        prom = PrometheusLite()
        prom.set_gauge("g", value)
        parsed = parse_exposition(render_exposition(prom))
        assert parsed["g"][()] == pytest.approx(value)


class TestImageDiff:
    def _dump(self, kernel, proc):
        return CheckpointEngine(kernel).dump(proc, leave_running=True)

    def test_identical_images(self, kernel):
        proc = kernel.clone(kernel.init_process)
        proc.address_space.grow_anon("heap", 1.0, content_tag="v0")
        old = self._dump(kernel, proc)
        new = self._dump(kernel, proc)
        diff = diff_images(old, new)
        assert diff.pages_added == 0
        assert diff.pages_removed == 0
        assert diff.pages_retagged == 0
        assert diff.dedup_ratio == 1.0

    def test_growth_detected(self, kernel):
        from repro.osproc.memory import VMAKind
        proc = kernel.clone(kernel.init_process)
        vma = proc.address_space.mmap(1024 * 4096, VMAKind.ANON, label="heap")
        vma.touch_range(0, 100, content_tag="v0")
        old = self._dump(kernel, proc)
        vma.touch_range(100, 50, content_tag="v0")
        new = self._dump(kernel, proc)
        diff = diff_images(old, new)
        assert diff.pages_added == 50
        assert diff.pages_unchanged == 100

    def test_retag_detected(self, kernel):
        from repro.osproc.memory import VMAKind
        proc = kernel.clone(kernel.init_process)
        vma = proc.address_space.mmap(64 * 4096, VMAKind.ANON, label="heap")
        vma.touch_range(0, 20, content_tag="v0")
        old = self._dump(kernel, proc)
        for index in range(5):
            vma.touch(index, content_tag="v1")
        new = self._dump(kernel, proc)
        diff = diff_images(old, new)
        assert diff.pages_retagged == 5
        assert diff.pages_unchanged == 15
        assert diff.delta_bytes == 5 * 4096

    def test_added_and_removed_vmas(self, kernel):
        from repro.osproc.memory import VMAKind
        proc = kernel.clone(kernel.init_process)
        proc.address_space.grow_anon("old-only", 0.1)
        old = self._dump(kernel, proc)
        gone = proc.address_space.find_by_label("old-only")
        proc.address_space.munmap(gone)
        proc.address_space.grow_anon("new-only", 0.2)
        new = self._dump(kernel, proc)
        diff = diff_images(old, new)
        by_label = {v.label: v for v in diff.vmas}
        assert by_label["old-only"].status == "removed"
        assert by_label["new-only"].status == "added"

    def test_version_bake_diff_mostly_shared(self, kernel):
        """Two bakes of the same function share nearly every page —
        the registry argument for content-addressed snapshot storage."""
        from repro.core.bake import Prebaker
        from repro.functions import make_app
        prebaker = Prebaker(kernel)
        v1 = prebaker.bake(make_app("markdown"), version=1)
        v2 = prebaker.bake(make_app("markdown"), version=2)
        diff = diff_images(v1.image, v2.image)
        assert diff.dedup_ratio > 0.95

    def test_summary_text(self, kernel):
        proc = kernel.clone(kernel.init_process)
        proc.address_space.grow_anon("heap", 0.05)
        old = self._dump(kernel, proc)
        proc.address_space.grow_anon("extra", 0.05)
        new = self._dump(kernel, proc)
        text = diff_images(old, new).summary()
        assert "diff" in text and "extra" in text and "dedup" in text
