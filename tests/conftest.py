"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import make_world
from repro.core.manager import PrebakeManager
from repro.osproc.kernel import Kernel
from repro.sim.costmodel import DEFAULT_COST_MODEL


@pytest.fixture
def world():
    """A fresh simulated world with a fixed seed."""
    return make_world(seed=1234)


@pytest.fixture
def kernel(world) -> Kernel:
    return world.kernel


@pytest.fixture
def quiet_world():
    """A world with zero timing noise (deterministic durations)."""
    return make_world(seed=1234, costs=DEFAULT_COST_MODEL.with_noise_sigma(0.0))


@pytest.fixture
def quiet_kernel(quiet_world) -> Kernel:
    return quiet_world.kernel


@pytest.fixture
def manager(kernel) -> PrebakeManager:
    return PrebakeManager(kernel)


@pytest.fixture
def quiet_manager(quiet_kernel) -> PrebakeManager:
    return PrebakeManager(quiet_kernel)
