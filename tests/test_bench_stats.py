"""Tests for the statistics module, cross-checked against scipy."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.stats import (
    bootstrap_median_ci,
    ecdf,
    ecdf_at,
    ks_distance,
    mann_whitney_u,
    median,
    median_difference_ci,
    quantile,
    shapiro_wilk,
)

scipy_stats = pytest.importorskip("scipy.stats")


class TestMedianQuantile:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even(self):
        assert median([4, 1, 3, 2]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_quantile_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert quantile(data, 0.0) == 1.0
        assert quantile(data, 1.0) == 4.0

    def test_quantile_interpolates(self):
        assert quantile([0.0, 10.0], 0.25) == 2.5

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    @given(data=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                         min_size=1, max_size=100),
           q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_quantile_within_range(self, data, q):
        value = quantile(data, q)
        assert min(data) <= value <= max(data)


class TestBootstrap:
    def test_ci_brackets_true_median(self):
        rng = random.Random(0)
        data = [rng.gauss(50.0, 2.0) for _ in range(200)]
        ci = bootstrap_median_ci(data, seed=1)
        assert ci.low <= ci.point <= ci.high
        assert ci.contains(50.0)

    def test_ci_deterministic_per_seed(self):
        data = [float(i) for i in range(50)]
        a = bootstrap_median_ci(data, seed=3)
        b = bootstrap_median_ci(data, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_narrower_with_more_data(self):
        rng = random.Random(1)
        small = [rng.gauss(0, 1) for _ in range(20)]
        big = [rng.gauss(0, 1) for _ in range(2000)]
        assert bootstrap_median_ci(big).width < bootstrap_median_ci(small).width

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0])

    def test_interval_overlap_helper(self):
        a = bootstrap_median_ci([1.0, 2.0, 3.0] * 10, seed=0)
        b = bootstrap_median_ci([100.0, 101.0, 102.0] * 10, seed=0)
        assert not a.overlaps(b)
        assert a.overlaps(a)

    def test_median_difference_ci(self):
        rng = random.Random(2)
        a = [rng.gauss(100, 1) for _ in range(100)]
        b = [rng.gauss(60, 1) for _ in range(100)]
        ci = median_difference_ci(a, b, seed=0)
        assert 38 < ci.low < ci.high < 42
        assert ci.point == pytest.approx(40, abs=1)


class TestShapiroWilk:
    def test_matches_scipy_on_normal(self):
        rng = random.Random(5)
        data = [rng.gauss(10, 3) for _ in range(150)]
        ours = shapiro_wilk(data)
        ref = scipy_stats.shapiro(data)
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-3)
        assert ours.p_value == pytest.approx(ref.pvalue, abs=1e-2)

    def test_matches_scipy_on_skewed(self):
        rng = random.Random(6)
        data = [rng.expovariate(1.0) for _ in range(150)]
        ours = shapiro_wilk(data)
        ref = scipy_stats.shapiro(data)
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-3)
        assert ours.rejects_at(0.05) == (ref.pvalue < 0.05)

    @pytest.mark.parametrize("n", [4, 7, 11, 12, 30, 100])
    def test_matches_scipy_small_samples(self, n):
        rng = random.Random(n)
        data = [rng.gauss(0, 1) for _ in range(n)]
        ours = shapiro_wilk(data)
        ref = scipy_stats.shapiro(data)
        assert ours.statistic == pytest.approx(ref.statistic, abs=2e-3)
        assert ours.p_value == pytest.approx(ref.pvalue, abs=0.03)

    def test_rejects_uniform_tail(self):
        data = [float(i) ** 3 for i in range(100)]
        assert shapiro_wilk(data).rejects_at(0.05)

    def test_too_small_sample(self):
        with pytest.raises(ValueError):
            shapiro_wilk([1.0, 2.0])

    def test_constant_sample_rejected(self):
        with pytest.raises(ValueError):
            shapiro_wilk([5.0] * 10)


class TestMannWhitney:
    def test_matches_scipy(self):
        rng = random.Random(7)
        a = [rng.gauss(10, 2) for _ in range(80)]
        b = [rng.gauss(10.8, 2) for _ in range(90)]
        ours = mann_whitney_u(a, b)
        ref = scipy_stats.mannwhitneyu(a, b, alternative="two-sided")
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue, abs=1e-3)

    def test_matches_scipy_with_ties(self):
        rng = random.Random(8)
        a = [float(rng.randint(0, 5)) for _ in range(60)]
        b = [float(rng.randint(1, 6)) for _ in range(60)]
        ours = mann_whitney_u(a, b)
        ref = scipy_stats.mannwhitneyu(a, b, alternative="two-sided",
                                       method="asymptotic")
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue, abs=1e-2)

    def test_identical_samples_not_significant(self):
        data = [1.0, 2.0, 3.0, 4.0] * 10
        assert mann_whitney_u(data, data).p_value > 0.9

    def test_disjoint_samples_significant(self):
        a = [float(i) for i in range(50)]
        b = [float(i) + 1000 for i in range(50)]
        assert mann_whitney_u(a, b).p_value < 1e-10

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    def test_all_constant(self):
        assert mann_whitney_u([1.0] * 5, [1.0] * 5).p_value == 1.0


class TestEcdfKs:
    def test_ecdf_shape(self):
        xs, ps = ecdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert ps == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_ecdf_at(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert ecdf_at(data, 0.5) == 0.0
        assert ecdf_at(data, 2.0) == 0.5
        assert ecdf_at(data, 99.0) == 1.0

    def test_ks_identical_is_zero(self):
        data = [1.0, 5.0, 9.0]
        assert ks_distance(data, data) == 0.0

    def test_ks_disjoint_is_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_ks_matches_scipy(self):
        rng = random.Random(9)
        a = [rng.gauss(0, 1) for _ in range(100)]
        b = [rng.gauss(0.5, 1) for _ in range(120)]
        ref = scipy_stats.ks_2samp(a, b)
        assert ks_distance(a, b) == pytest.approx(ref.statistic, abs=1e-12)

    @given(a=st.lists(st.floats(min_value=-100, max_value=100),
                      min_size=1, max_size=50),
           b=st.lists(st.floats(min_value=-100, max_value=100),
                      min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_ks_properties(self, a, b):
        d = ks_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(ks_distance(b, a))
