"""End-to-end integration tests across the whole stack."""

import pytest

from repro import PrebakeManager, make_world
from repro.bench.tracer import PhaseTracer
from repro.core.policy import AfterReady, AfterWarmup
from repro.faas import FaaSPlatform
from repro.faas.openfaas.stack import make_openfaas_stack
from repro.functions import (
    MarkdownFunction,
    NoopFunction,
    make_app,
    small_function,
)
from repro.runtime.base import Request


class TestPaperHeadlineScenario:
    """The paper's abstract, end to end in one simulated world."""

    def test_full_lifecycle_one_world(self):
        world = make_world(seed=2020)
        manager = PrebakeManager(world.kernel)
        app = make_app("image-resizer")

        # Deploy = build + bake (off the request path, §3.1).
        report = manager.deploy(app, policy=AfterReady())
        assert report.snapshot_mib == pytest.approx(99.2, abs=1.0)

        # Vanilla cold start.
        vanilla = manager.start_replica(make_app("image-resizer"),
                                        technique="vanilla")
        vanilla_ms = vanilla.startup_ms("ready")

        # Prebaked cold start from the same world's snapshot.
        prebaked = manager.start_replica(app, technique="prebake")
        prebaked_ms = prebaked.startup_ms("ready")

        # Paper: 310ms → 87ms, a 71% improvement.
        assert 1 - prebaked_ms / vanilla_ms == pytest.approx(0.71, abs=0.05)

        # Both replicas serve equivalent responses afterwards.
        rv = vanilla.invoke(Request())
        rp = prebaked.invoke(Request())
        assert rv.ok and rp.ok
        assert rv.body == rp.body

    def test_warmup_effect_on_synthetic(self):
        world = make_world(seed=2021)
        manager = PrebakeManager(world.kernel)
        app = small_function()
        manager.deploy(app, policy=AfterReady())
        manager.deploy(app, policy=AfterWarmup(1))

        cold = manager.start_replica(app, technique="vanilla")
        cold.invoke()
        nowarm = manager.start_replica(app, technique="prebake",
                                       policy=AfterReady())
        nowarm.invoke()
        warm = manager.start_replica(app, technique="prebake",
                                     policy=AfterWarmup(1))
        warm.invoke()

        vanilla_ms = cold.startup_ms("first_response")
        nowarm_ms = nowarm.startup_ms("first_response")
        warm_ms = warm.startup_ms("first_response")
        assert 1.1 < vanilla_ms / nowarm_ms < 1.45   # paper ≈ 127%
        assert 3.3 < vanilla_ms / warm_ms < 4.8      # paper ≈ 404%


class TestPlatformAutoscaleStory:
    def test_burst_then_gc_then_fast_cold_start(self):
        world = make_world(seed=77)
        platform = FaaSPlatform(world.kernel)
        platform.register_function(MarkdownFunction, start_technique="prebake",
                                   snapshot_policy=AfterWarmup(1),
                                   idle_timeout_ms=500.0)
        # Burst: three concurrent-ish invocations scale the pool.
        platform.scale("markdown", 3)
        assert platform.replica_count("markdown") == 3
        # Quiet period → GC everything.
        world.kernel.clock.advance(10_000.0)
        platform.gc_tick()
        assert platform.replica_count("markdown") == 0
        # The next request cold starts from the snapshot — fast.
        response = platform.invoke("markdown", Request(body="## hi"))
        assert response.ok
        cold = platform.cold_start_latencies("markdown")[-1]
        assert cold < 60.0

    def test_mixed_techniques_coexist(self):
        world = make_world(seed=78)
        platform = FaaSPlatform(world.kernel)
        platform.register_function(NoopFunction, start_technique="vanilla")
        platform.register_function(MarkdownFunction, start_technique="prebake")
        platform.invoke("noop")
        platform.invoke("markdown")
        records = {r.function: r.technique
                   for r in platform.router.stats.records}
        assert records == {"noop": "vanilla", "markdown": "prebake"}


class TestOpenFaasEndToEnd:
    def test_version_bump_rebakes_and_redeploys(self):
        world = make_world(seed=90)
        stack = make_openfaas_stack(world.kernel)
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        stack.cli.up("md")
        first = stack.gateway.invoke("md")
        assert first.ok

        stack.cli.bump_version("md")
        stack.cli.up("md")
        second = stack.gateway.invoke("md", Request(body="# v2"))
        assert "<h1>v2</h1>" in second.body
        assert len(stack.snapshot_store) == 2  # one snapshot per version

    def test_snapshot_reused_across_replicas(self):
        world = make_world(seed=91)
        stack = make_openfaas_stack(world.kernel)
        stack.cli.new("noop", "java8-criu", NoopFunction)
        stack.cli.up("noop")
        stack.gateway.scale("noop", 4)
        key = stack.snapshot_store.keys()[0]
        assert stack.snapshot_store.restore_count(key) == 4


class TestTracerOnFullStack:
    def test_phase_story_matches_paper_narrative(self):
        """One world, both techniques, phases measured by probes."""
        world = make_world(seed=55)
        manager = PrebakeManager(world.kernel)
        app = make_app("markdown")
        manager.deploy(app)

        tracer = PhaseTracer(world.kernel)
        tracer.start_episode()
        manager.start_replica(make_app("markdown"), technique="vanilla")
        tracer.stop_episode()
        vanilla_phases = tracer.breakdown()

        tracer.start_episode()
        manager.start_replica(app, technique="prebake")
        tracer.stop_episode()
        prebake_phases = tracer.breakdown()

        assert vanilla_phases.rts_ms > 60.0
        assert prebake_phases.rts_ms == 0.0
        assert prebake_phases.total_ms < vanilla_phases.total_ms
