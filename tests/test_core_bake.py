"""Tests for the bake pipeline."""

import pytest

from repro.core.bake import BakeError, Prebaker
from repro.core.policy import AfterReady, AfterRuntimeBoot, AfterWarmup
from repro.core.store import SnapshotStore
from repro.functions import make_app, small_function
from repro.osproc.process import ProcessState


class TestBake:
    def test_bake_stores_snapshot(self, kernel):
        prebaker = Prebaker(kernel)
        report = prebaker.bake(make_app("noop"))
        assert prebaker.store.contains(report.key)
        assert report.key.policy == "after-ready"
        assert report.snapshot_mib > 0

    def test_bake_kills_donor_process(self, kernel):
        prebaker = Prebaker(kernel)
        before = {p.pid for p in kernel.live_processes()}
        prebaker.bake(make_app("noop"))
        after = {p.pid for p in kernel.live_processes()}
        # No java process survives the bake.
        survivors = [kernel.get(pid).comm for pid in after - before]
        assert "java" not in survivors

    def test_bake_uses_shared_store(self, kernel):
        store = SnapshotStore()
        prebaker = Prebaker(kernel, store)
        report = prebaker.bake(make_app("noop"))
        assert store.contains(report.key)

    def test_bake_after_ready_snapshot_not_warm(self, kernel):
        report = Prebaker(kernel).bake(make_app("noop"), policy=AfterReady())
        assert report.image.warm is False
        assert report.warmup_requests == 0

    def test_bake_with_warmup_runs_requests(self, kernel):
        report = Prebaker(kernel).bake(
            make_app("markdown"), policy=AfterWarmup(requests=3))
        assert report.warmup_requests == 3
        assert report.image.warm is True
        assert report.image.runtime_state["requests_served"] == 3

    def test_warm_synthetic_snapshot_contains_classes(self, kernel):
        app = small_function()
        report = Prebaker(kernel).bake(app, policy=AfterWarmup(requests=1))
        loaded = report.image.runtime_state["extra"]["loaded_class_names"]
        assert len(loaded) == len(app.classes)

    def test_unwarmed_synthetic_snapshot_has_no_classes(self, kernel):
        report = Prebaker(kernel).bake(small_function(), policy=AfterReady())
        assert report.image.runtime_state["extra"]["loaded_class_names"] == []

    def test_warm_snapshot_larger_than_ready(self, kernel):
        prebaker = Prebaker(kernel)
        ready = prebaker.bake(small_function(), policy=AfterReady())
        warm = prebaker.bake(small_function(), policy=AfterWarmup(1), version=2)
        assert warm.snapshot_mib > ready.snapshot_mib + 2.0

    def test_after_runtime_boot_snapshot_not_ready(self, kernel):
        report = Prebaker(kernel).bake(
            make_app("noop"), policy=AfterRuntimeBoot())
        state = report.image.runtime_state
        assert state["booted"] is True
        assert state["ready"] is False

    def test_bake_duration_recorded(self, kernel):
        report = Prebaker(kernel).bake(make_app("noop"))
        assert report.bake_duration_ms > 0

    def test_version_flows_into_key(self, kernel):
        report = Prebaker(kernel).bake(make_app("noop"), version=4)
        assert report.key.version == 4
