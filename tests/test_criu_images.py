"""Tests for the checkpoint image format."""

import pytest

from repro.criu.images import (
    CheckpointImage,
    FdDescriptor,
    ImageFile,
    VMADescriptor,
    build_image_files,
)
from repro.osproc.memory import PAGE_SIZE


def make_vma(resident=4, length_pages=8, label="heap", file_path=None):
    return VMADescriptor(
        start=0x1000_0000,
        length=length_pages * PAGE_SIZE,
        kind="anon" if file_path is None else "file",
        prot="rw-",
        label=label,
        file_path=file_path,
        file_offset=0,
        file_size=0 if file_path is None else length_pages * PAGE_SIZE,
        resident_indices=tuple(range(resident)),
        content_tags=tuple("t" for _ in range(resident)),
    )


def make_image(vmas=None, fds=None, warm=False):
    image = CheckpointImage(
        image_id="img-test",
        pid=42,
        comm="java",
        argv=["java", "-jar", "fn.jar"],
        created_at_ms=100.0,
        namespace_ids={"pid": 1},
        vmas=vmas if vmas is not None else [make_vma()],
        fds=fds or [],
        runtime_state=None,
        warm=warm,
    )
    build_image_files(image)
    return image


class TestImageAccounting:
    def test_pages_bytes_counts_resident(self):
        image = make_image(vmas=[make_vma(resident=10, length_pages=20)])
        assert image.pages_bytes == 10 * PAGE_SIZE
        assert image.resident_pages == 10

    def test_total_mib_includes_metadata(self):
        image = make_image()
        assert image.total_bytes > image.pages_bytes
        assert image.total_mib == image.total_bytes / (1024 * 1024)

    def test_pages_file_size_matches(self):
        image = make_image(vmas=[make_vma(resident=7)])
        assert image.file("pages-1.img").size_bytes == 7 * PAGE_SIZE

    def test_expected_image_files_present(self):
        image = make_image()
        names = set(image.files)
        assert {"inventory.img", "pstree.img", "pages-1.img",
                "files.img", "namespaces.img"} <= names
        assert f"core-{image.pid}.img" in names
        assert f"mm-{image.pid}.img" in names

    def test_file_lookup_error(self):
        image = make_image()
        with pytest.raises(KeyError, match="has no file"):
            image.file("bogus.img")


class TestImageValidation:
    def test_valid_image_passes(self):
        make_image().validate()

    def test_no_vmas_rejected(self):
        image = make_image()
        image.vmas = []
        with pytest.raises(ValueError, match="no VMAs"):
            image.validate()

    def test_pages_file_mismatch_rejected(self):
        image = make_image()
        image.files["pages-1.img"] = ImageFile("pages-1.img", 1)
        with pytest.raises(ValueError, match="pages-1.img size"):
            image.validate()

    def test_tag_index_desync_rejected(self):
        bad = VMADescriptor(
            start=0, length=4 * PAGE_SIZE, kind="anon", prot="rw-", label="x",
            file_path=None, file_offset=0, file_size=0,
            resident_indices=(0, 1), content_tags=("a",),
        )
        image = make_image(vmas=[bad])
        with pytest.raises(ValueError, match="out of sync"):
            image.validate()

    def test_overfull_vma_rejected(self):
        bad = VMADescriptor(
            start=0, length=PAGE_SIZE, kind="anon", prot="rw-", label="x",
            file_path=None, file_offset=0, file_size=0,
            resident_indices=(0, 1), content_tags=("a", "b"),
        )
        image = make_image(vmas=[bad])
        with pytest.raises(ValueError, match="more resident pages"):
            image.validate()

    def test_missing_pages_file_rejected(self):
        image = make_image()
        del image.files["pages-1.img"]
        with pytest.raises(ValueError, match="missing pages-1.img"):
            image.validate()


class TestDescriptors:
    def test_fd_descriptor_fields(self):
        fd = FdDescriptor(fd=3, path="/jar", offset=10, flags="r",
                          is_socket=False, file_size=100)
        image = make_image(fds=[fd])
        assert image.files["files.img"].payload == [fd]

    def test_warm_flag_carried(self):
        assert make_image(warm=True).warm is True
        assert make_image(warm=False).warm is False
