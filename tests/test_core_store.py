"""Tests for the snapshot store."""

import pytest

from repro.core.store import SnapshotKey, SnapshotNotFound, SnapshotStore
from repro.criu.checkpoint import CheckpointEngine


@pytest.fixture
def image(kernel):
    proc = kernel.clone(kernel.init_process)
    proc.address_space.grow_anon("heap", 1.0)
    return CheckpointEngine(kernel).dump(proc, leave_running=False)


KEY = SnapshotKey(function="fn", runtime_kind="jvm", policy="after-ready")


class TestSnapshotStore:
    def test_put_get_roundtrip(self, image):
        store = SnapshotStore()
        store.put(KEY, image)
        assert store.get(KEY) is image

    def test_get_missing_raises_with_inventory(self, image):
        store = SnapshotStore()
        store.put(KEY, image)
        missing = SnapshotKey("other", "jvm", "after-ready")
        with pytest.raises(SnapshotNotFound, match="fn@v1"):
            store.get(missing)

    def test_get_increments_restore_count(self, image):
        store = SnapshotStore()
        store.put(KEY, image)
        store.get(KEY)
        store.get(KEY)
        assert store.restore_count(KEY) == 2

    def test_peek_does_not_count(self, image):
        store = SnapshotStore()
        store.put(KEY, image)
        assert store.peek(KEY) is image
        assert store.restore_count(KEY) == 0

    def test_peek_missing_is_none(self):
        assert SnapshotStore().peek(KEY) is None

    def test_replace_same_key(self, image, kernel):
        store = SnapshotStore()
        store.put(KEY, image)
        proc = kernel.clone(kernel.init_process)
        proc.address_space.grow_anon("heap", 2.0)
        other = CheckpointEngine(kernel).dump(proc, leave_running=False)
        store.put(KEY, other)
        assert store.get(KEY) is other
        assert len(store) == 1

    def test_versions_are_distinct_keys(self, image):
        store = SnapshotStore()
        v1 = SnapshotKey("fn", "jvm", "after-ready", version=1)
        v2 = SnapshotKey("fn", "jvm", "after-ready", version=2)
        store.put(v1, image)
        store.put(v2, image)
        assert len(store) == 2

    def test_delete(self, image):
        store = SnapshotStore()
        store.put(KEY, image)
        store.delete(KEY)
        assert not store.contains(KEY)
        with pytest.raises(SnapshotNotFound):
            store.delete(KEY)

    def test_total_bytes(self, image):
        store = SnapshotStore()
        store.put(KEY, image)
        assert store.total_bytes == image.total_bytes
        assert store.total_mib == pytest.approx(image.total_mib)

    def test_keys_sorted(self, image):
        store = SnapshotStore()
        b = SnapshotKey("b", "jvm", "after-ready")
        a = SnapshotKey("a", "jvm", "after-ready")
        store.put(b, image)
        store.put(a, image)
        assert store.keys() == [a, b]

    def test_empty_store_is_falsy_but_usable(self, image):
        """Regression for the `store or SnapshotStore()` bug."""
        store = SnapshotStore()
        assert len(store) == 0
        assert not store  # falsy when empty (defines __len__)
        store.put(KEY, image)
        assert store.contains(KEY)

    def test_key_str(self):
        assert str(KEY) == "fn@v1/jvm/after-ready"
