"""Phase profiler: taxonomy accounting, partitioning, zero-cost claim.

The acceptance bar: for both techniques the four top-level phases sum
to the measured start-up time exactly (float round-off only), restore
sub-phases partition the restore charge, and an uninstalled profiler
leaves simulated time and RNG draws untouched.
"""

import pytest

from repro import make_world
from repro.bench.profile import (
    ProfileAccountingError,
    ProfileRun,
    result_from_dict,
    run_profile_experiment,
)
from repro.core.manager import PrebakeManager
from repro.criu.restore import RestoreMode
from repro.functions import make_app
from repro.obs import profile as prof
from repro.obs.profile import PhaseSample, PhaseProfiler


class TestTaxonomy:
    def test_restore_subphases_fold_under_appinit(self):
        assert prof.phase_stack("restore.chunk-fetch") == \
            ("APPINIT", "restore.chunk-fetch")
        assert prof.phase_stack("CLONE") == ("CLONE",)

    def test_phase_totals_fold_and_sum(self):
        profiler = PhaseProfiler(clock=make_world(seed=1).kernel.clock)
        profiler.record("CLONE", 1.0)
        profiler.record("restore.digest-verify", 2.0)
        profiler.record("restore.chunk-fetch", 3.0)
        totals = profiler.phase_totals()
        assert totals["APPINIT"] == 5.0
        assert totals["RTS"] == 0.0
        assert sum(totals.values()) == profiler.total_ms() == 6.0
        # Raw totals keep the sub-phases distinct.
        raw = profiler.totals()
        assert raw["restore.chunk-fetch"] == 3.0

    def test_folded_lines_format(self):
        samples = [PhaseSample("CLONE", 0.5, at_ms=0.0),
                   PhaseSample("restore.chunk-fetch", 1.25, at_ms=1.0),
                   PhaseSample("restore.chunk-fetch", 0.75, at_ms=2.0)]
        lines = prof.folded_lines(samples, prefix="prebake;noop")
        assert "prebake;noop;CLONE 500" in lines
        # Same stack aggregates; value is integer microseconds.
        assert "prebake;noop;APPINIT;restore.chunk-fetch 2000" in lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert value == str(int(value))


class TestExperimentAccounting:
    def test_phase_sums_equal_startup_both_techniques(self):
        result = run_profile_experiment("markdown", repetitions=2, seed=42)
        result.verify()  # raises on any accounting mismatch
        for technique in ("vanilla", "prebake"):
            runs = result.technique_runs(technique)
            assert len(runs) == 2
            for run in runs:
                totals = run.phase_totals()
                assert sum(totals.values()) == pytest.approx(
                    run.startup_ms, abs=1e-6)

    def test_vanilla_has_no_restore_subphases_and_prebake_no_rts(self):
        result = run_profile_experiment("markdown", repetitions=1, seed=7)
        vanilla = result.technique_runs("vanilla")[0]
        assert not any(s.phase.startswith("restore.")
                       for s in vanilla.samples)
        prebake = result.technique_runs("prebake")[0]
        assert prebake.phase_totals()["RTS"] == 0.0
        assert any(s.phase.startswith("restore.") for s in prebake.samples)

    def test_restore_subphases_partition_the_restore_span(self):
        """Recorded restore.* durations sum to exactly what the restore
        charged to the clock (the criu.restore span's window)."""
        kernel = make_world(seed=13, observe=True).kernel
        manager = PrebakeManager(kernel)
        app = make_app("markdown")
        manager.deploy(app)
        profiler = prof.install(kernel)
        manager.start_replica(app, technique="prebake")
        (restore_span,) = kernel.obs.tracer.find("criu.restore")
        restore_ms = sum(s.duration_ms for s in profiler.samples
                         if s.phase.startswith("restore."))
        assert restore_ms == pytest.approx(restore_span.duration_ms,
                                           abs=1e-9)

    def test_working_set_restore_accounts_prefetch(self):
        result = run_profile_experiment(
            "markdown", repetitions=1, seed=21,
            restore_mode=RestoreMode.WORKING_SET)
        result.verify()
        prebake = result.technique_runs("prebake")[0]
        phases = {s.phase for s in prebake.samples}
        assert prof.RESTORE_WS_PREFETCH in phases or \
            prof.RESTORE_CHUNK_FETCH in phases

    def test_accounting_violation_raises(self):
        run = ProfileRun(technique="vanilla", function="noop", rep=0,
                         startup_ms=10.0,
                         samples=[PhaseSample("CLONE", 3.0, at_ms=0.0)])
        with pytest.raises(ProfileAccountingError):
            run.verify()


class TestZeroCost:
    def test_uninstalled_profiler_changes_nothing(self):
        """Same seed with and without a profiler: identical clock and
        identical start-up measurement — instrumentation is free."""
        def startup(profiled):
            kernel = make_world(seed=99).kernel
            manager = PrebakeManager(kernel)
            app = make_app("markdown")
            manager.deploy(app)
            if profiled:
                prof.install(kernel)
            handle = manager.start_replica(app, technique="prebake")
            return handle.startup_ms("ready"), kernel.clock.now

        assert startup(profiled=False) == startup(profiled=True)

    def test_install_is_idempotent_and_uninstall_detaches(self):
        kernel = make_world(seed=3).kernel
        assert kernel.profile is None
        profiler = prof.install(kernel)
        assert prof.install(kernel) is profiler
        prof.uninstall(kernel)
        assert kernel.profile is None
        prof.record(kernel, "CLONE", 1.0)  # no-op, must not raise


class TestSerialization:
    def test_profile_dump_round_trips(self):
        result = run_profile_experiment("noop", repetitions=1, seed=5)
        rebuilt = result_from_dict(result.as_dict())
        assert rebuilt.as_dict() == result.as_dict()
        rebuilt.verify()

    def test_schema_version_is_checked(self):
        result = run_profile_experiment("noop", repetitions=1, seed=5)
        payload = result.as_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema"):
            result_from_dict(payload)
