"""Tests for the real-process backend (host-dependent, kept small)."""

import io
import os

import pytest

from repro.realproc.child import (
    FUNCTION_NAMES,
    build_handler,
    parse_ok_line,
    parse_ready_line,
    serve,
)
from repro.realproc.runner import VanillaProcessRunner
from repro.realproc.zygote import ZygoteRunner


class TestProtocol:
    def test_parse_ready(self):
        assert parse_ready_line("READY 12345\n") == 12345

    def test_parse_ready_malformed(self):
        with pytest.raises(ValueError):
            parse_ready_line("NOPE\n")

    def test_parse_ok(self):
        ns, digest = parse_ok_line("OK 500 abc123\n")
        assert ns == 500 and digest == "abc123"

    def test_parse_ok_malformed(self):
        with pytest.raises(ValueError):
            parse_ok_line("OK 500\n")


class TestHandlers:
    def test_all_functions_have_builders(self):
        for name in FUNCTION_NAMES:
            assert callable(build_handler(name))

    def test_unknown_function(self):
        with pytest.raises(SystemExit):
            build_handler("ghost")

    def test_noop_handler(self):
        assert build_handler("noop")("") == "ok"

    def test_markdown_handler_renders(self):
        html = build_handler("markdown")("# Title")
        assert "<h1>Title</h1>" in html

    def test_markdown_handler_default_document(self):
        assert "OpenPiton" in build_handler("markdown")("")

    def test_resizer_handler_reports_dims(self):
        assert build_handler("image-resizer")("") == "69x29"

    def test_serve_loop_in_memory(self):
        infile = io.StringIO("# A\nQUIT\n")
        outfile = io.StringIO()
        assert serve("markdown", infile, outfile) == 0
        lines = outfile.getvalue().splitlines()
        assert lines[0].startswith("READY ")
        assert lines[1].startswith("OK ")

    def test_serve_reports_errors_without_dying(self):
        infile = io.StringIO("x\ny\nQUIT\n")
        outfile = io.StringIO()

        calls = {"n": 0}

        def bad_handler(body):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("boom")
            return "fine"

        from repro.realproc.child import serve_with_handler
        serve_with_handler(bad_handler, infile, outfile)
        lines = outfile.getvalue().splitlines()
        assert lines[1].startswith("ERR ValueError")
        assert lines[2].startswith("OK ")


@pytest.mark.skipif(not hasattr(os, "fork"), reason="POSIX only")
class TestRealProcesses:
    def test_vanilla_start_measures(self):
        sample = VanillaProcessRunner().start_once("noop")
        assert sample.startup_ms > 1.0
        assert sample.first_service_ms is not None

    def test_zygote_much_faster_than_vanilla(self):
        vanilla = VanillaProcessRunner().start_once("noop").startup_ms
        with ZygoteRunner("noop") as zygote:
            forked = zygote.start_once().startup_ms
        assert forked < 0.5 * vanilla

    def test_zygote_serves_correct_results(self):
        with ZygoteRunner("markdown") as zygote:
            sample = zygote.start_once(invoke=True)
        assert sample.first_service_ms is not None

    def test_zygote_multiple_spawns(self):
        with ZygoteRunner("noop") as zygote:
            samples = zygote.measure(repetitions=3)
        assert len(samples) == 3
        assert all(s.startup_ms > 0 for s in samples)
