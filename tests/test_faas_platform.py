"""Tests for the SPEC-RG platform layer: registry, resources, router,
deployer, autoscaler and the facade."""

import pytest

from repro.core.policy import AfterWarmup
from repro.faas import (
    AutoscalerConfig,
    ComputeNode,
    FaaSPlatform,
    FunctionMetadata,
    FunctionRegistry,
    PlatformConfig,
    RegistryError,
    ResourceError,
    ResourceManager,
)
from repro import make_world
from repro.faas.replica import ReplicaState, next_replica_id, reset_replica_ids
from repro.functions import MarkdownFunction, NoopFunction
from repro.runtime.base import Request


class TestFunctionRegistry:
    def _meta(self, name="fn", version=1):
        return FunctionMetadata(
            name=name, runtime_kind="jvm", version=version,
            app_factory=NoopFunction,
        )

    def test_register_lookup(self):
        registry = FunctionRegistry()
        registry.register(self._meta())
        assert registry.lookup("fn").version == 1

    def test_new_version_supersedes(self):
        registry = FunctionRegistry()
        registry.register(self._meta(version=1))
        registry.register(self._meta(version=2))
        assert registry.lookup("fn").version == 2

    def test_stale_version_rejected(self):
        registry = FunctionRegistry()
        registry.register(self._meta(version=2))
        with pytest.raises(RegistryError, match="does not supersede"):
            registry.register(self._meta(version=2))

    def test_lookup_missing(self):
        with pytest.raises(RegistryError, match="not registered"):
            FunctionRegistry().lookup("ghost")

    def test_unregister(self):
        registry = FunctionRegistry()
        registry.register(self._meta())
        registry.unregister("fn")
        assert not registry.contains("fn")
        with pytest.raises(RegistryError):
            registry.unregister("fn")


class TestResources:
    def test_allocate_and_release(self):
        node = ComputeNode(name="n", memory_mib=1024)
        allocation = node.allocate("fn", 256.0)
        assert node.free_mib == 768.0
        allocation.release()
        assert node.free_mib == 1024.0

    def test_release_idempotent(self):
        node = ComputeNode(name="n", memory_mib=100)
        allocation = node.allocate("fn", 10.0)
        allocation.release()
        allocation.release()
        assert node.free_mib == 100.0

    def test_over_capacity_rejected(self):
        node = ComputeNode(name="n", memory_mib=100)
        with pytest.raises(ResourceError, match="free"):
            node.allocate("fn", 101.0)

    def test_privileged_gate(self):
        node = ComputeNode(name="n", memory_mib=100, allow_privileged=False)
        with pytest.raises(ResourceError, match="privileged"):
            node.allocate("fn", 10.0, privileged=True)

    def test_manager_places_on_freest_node(self):
        small = ComputeNode(name="small", memory_mib=512)
        big = ComputeNode(name="big", memory_mib=4096)
        manager = ResourceManager(nodes=[small, big])
        allocation = manager.place("fn", 128.0)
        assert allocation.node is big

    def test_manager_exhaustion(self):
        manager = ResourceManager(nodes=[ComputeNode(name="n", memory_mib=64)])
        with pytest.raises(ResourceError, match="no node"):
            manager.place("fn", 1000.0)

    def test_duplicate_node_name_rejected(self):
        manager = ResourceManager()
        with pytest.raises(ResourceError, match="duplicate"):
            manager.add_node(ComputeNode(name="node-0"))

    def test_utilization(self):
        node = ComputeNode(name="n", memory_mib=100)
        manager = ResourceManager(nodes=[node])
        manager.place("fn", 25.0)
        assert manager.utilization()["n"] == pytest.approx(0.25)


@pytest.fixture
def platform(kernel):
    return FaaSPlatform(kernel, PlatformConfig(
        nodes=2, autoscaler=AutoscalerConfig(idle_timeout_ms=1000.0)))


class TestPlatformFlow:
    def test_first_invoke_is_cold(self, platform):
        platform.register_function(NoopFunction)
        response = platform.invoke("noop")
        assert response.ok
        assert platform.router.stats.cold_starts == 1
        assert platform.replica_count("noop") == 1

    def test_second_invoke_is_warm(self, platform):
        platform.register_function(NoopFunction)
        platform.invoke("noop")
        platform.invoke("noop")
        assert platform.router.stats.invocations == 2
        assert platform.router.stats.cold_starts == 1
        assert platform.replica_count("noop") == 1

    def test_prebaked_cold_start_faster(self, kernel):
        platform = FaaSPlatform(kernel)
        platform.register_function(NoopFunction, start_technique="vanilla")
        platform.invoke("noop")
        vanilla_cold = platform.cold_start_latencies("noop")[0]

        platform2 = FaaSPlatform(kernel)
        platform2.register_function(NoopFunction, start_technique="prebake")
        platform2.invoke("noop")
        prebake_cold = platform2.cold_start_latencies("noop")[0]
        assert prebake_cold < 0.75 * vanilla_cold

    def test_warm_policy_via_platform(self, platform):
        platform.register_function(
            MarkdownFunction, start_technique="prebake",
            snapshot_policy=AfterWarmup(1),
        )
        response = platform.invoke("markdown", Request(body="# T"))
        assert "<h1>T</h1>" in response.body
        cold = platform.cold_start_latencies("markdown")[0]
        assert cold < 60.0  # warm snapshot restore, paper ~53ms

    def test_register_unknown_technique_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.register_function(NoopFunction, start_technique="magic")

    def test_reregister_bumps_version(self, platform):
        platform.register_function(NoopFunction)
        meta = platform.register_function(NoopFunction)
        assert meta.version == 2

    def test_scale_up(self, platform):
        platform.register_function(NoopFunction)
        platform.scale("noop", 3)
        assert platform.replica_count("noop") == 3

    def test_gc_reclaims_idle_replicas(self, platform, kernel):
        platform.register_function(NoopFunction)
        platform.invoke("noop")
        kernel.clock.advance(2000.0)  # beyond idle timeout
        platform.gc_tick()
        assert platform.replica_count("noop") == 0
        events = platform.autoscaler.events
        assert any(e.action == "gc" for e in events)

    def test_gc_keeps_active_replicas(self, platform, kernel):
        platform.register_function(NoopFunction)
        platform.invoke("noop")
        kernel.clock.advance(10.0)  # well within timeout
        platform.gc_tick()
        assert platform.replica_count("noop") == 1

    def test_cold_start_after_gc(self, platform, kernel):
        platform.register_function(NoopFunction)
        platform.invoke("noop")
        kernel.clock.advance(2000.0)
        platform.gc_tick()
        platform.invoke("noop")
        assert platform.router.stats.cold_starts == 2

    def test_max_replica_cap(self, platform):
        platform.register_function(NoopFunction, max_replicas=2)
        platform.scale("noop", 10)
        assert platform.replica_count("noop") <= 2

    def test_replica_serve_states(self, platform):
        platform.register_function(NoopFunction)
        platform.invoke("noop")
        replica = platform.deployer.replicas("noop")[0]
        assert replica.state is ReplicaState.IDLE
        assert replica.requests_served == 1

    def test_terminated_replica_releases_node_memory(self, platform):
        platform.register_function(NoopFunction)
        platform.invoke("noop")
        free_before = platform.resources.total_free_mib
        platform.deployer.terminate_all("noop")
        assert platform.resources.total_free_mib > free_before

    def test_router_records_telemetry(self, platform):
        platform.register_function(NoopFunction)
        platform.invoke("noop")
        record = platform.router.stats.records[0]
        assert record.cold_start is True
        assert record.queued_ms > 0
        assert record.function == "noop"
        assert record.total_ms >= record.service_ms


class TestReplicaIds:
    """Replica IDs are allocated per simulated world, not globally."""

    def _ids(self, seed):
        platform = FaaSPlatform(make_world(seed=seed).kernel)
        platform.register_function(NoopFunction)
        platform.invoke("noop")
        platform.scale("noop", 3)
        return sorted(r.replica_id for r in platform.deployer.replicas("noop"))

    def test_fresh_world_numbers_from_one(self):
        assert self._ids(1) == [1, 2, 3]

    def test_ids_deterministic_across_identical_worlds(self):
        assert self._ids(7) == self._ids(7)

    def test_two_live_worlds_do_not_share_a_counter(self):
        k1 = make_world(seed=1).kernel
        k2 = make_world(seed=2).kernel
        assert next_replica_id(k1) == 1
        assert next_replica_id(k1) == 2
        assert next_replica_id(k2) == 1  # unaffected by k1's allocations

    def test_reset_restarts_one_world(self):
        kernel = make_world(seed=1).kernel
        next_replica_id(kernel)
        next_replica_id(kernel)
        reset_replica_ids(kernel)
        assert next_replica_id(kernel) == 1

    def test_reset_all_worlds(self):
        k1 = make_world(seed=1).kernel
        k2 = make_world(seed=2).kernel
        next_replica_id(k1)
        next_replica_id(k2)
        reset_replica_ids()
        assert next_replica_id(k1) == 1
        assert next_replica_id(k2) == 1
