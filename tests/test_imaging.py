"""Tests for the imaging substrate: Image, codecs, resize, generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.imaging import (
    Image,
    ImageFormatError,
    decode_bmp,
    decode_ppm,
    encode_bmp,
    encode_ppm,
    resize,
    resize_bilinear,
    resize_box,
    resize_nearest,
    synthetic_photo,
)
from repro.functions.imaging.resize import scale_to_fraction


def checkerboard(width=16, height=12, cell=4):
    img = Image.blank(width, height)
    for y in range(height):
        for x in range(width):
            if ((x // cell) + (y // cell)) % 2:
                img.put(x, y, (255, 255, 255))
    return img


class TestImage:
    def test_blank_dimensions(self):
        img = Image.blank(10, 6, color=(1, 2, 3))
        assert img.size == (10, 6)
        assert img.get(0, 0) == (1, 2, 3)

    def test_blank_invalid_dims(self):
        with pytest.raises(ImageFormatError):
            Image.blank(0, 5)

    def test_grayscale_array_promoted(self):
        img = Image(np.zeros((4, 4), dtype=np.uint8))
        assert img.pixels.shape == (4, 4, 3)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ImageFormatError):
            Image(np.zeros((4, 4, 2), dtype=np.uint8))

    def test_float_array_clipped(self):
        img = Image(np.full((2, 2, 3), 300.0))
        assert img.get(0, 0) == (255, 255, 255)

    def test_put_get_roundtrip(self):
        img = Image.blank(4, 4)
        img.put(2, 3, (9, 8, 7))
        assert img.get(2, 3) == (9, 8, 7)

    def test_out_of_bounds(self):
        img = Image.blank(4, 4)
        with pytest.raises(IndexError):
            img.get(4, 0)
        with pytest.raises(IndexError):
            img.put(0, -1, (0, 0, 0))

    def test_copy_independent(self):
        img = Image.blank(2, 2)
        dup = img.copy()
        dup.put(0, 0, (5, 5, 5))
        assert img.get(0, 0) == (0, 0, 0)

    def test_equality(self):
        assert Image.blank(2, 2) == Image.blank(2, 2)
        assert Image.blank(2, 2) != Image.blank(2, 3)

    def test_nbytes(self):
        assert Image.blank(10, 10).nbytes == 300


class TestPPM:
    def test_p6_roundtrip(self):
        img = checkerboard()
        assert decode_ppm(encode_ppm(img, binary=True)) == img

    def test_p3_roundtrip(self):
        img = checkerboard(8, 6)
        assert decode_ppm(encode_ppm(img, binary=False)) == img

    def test_p3_with_comment(self):
        data = b"P3\n# a comment\n1 1\n255\n10 20 30\n"
        img = decode_ppm(data)
        assert img.get(0, 0) == (10, 20, 30)

    def test_bad_magic_rejected(self):
        with pytest.raises(ImageFormatError, match="magic"):
            decode_ppm(b"JUNK")

    def test_truncated_p6_rejected(self):
        img = checkerboard()
        data = encode_ppm(img)[:-10]
        with pytest.raises(ImageFormatError, match="truncated"):
            decode_ppm(data)

    def test_unsupported_maxval_rejected(self):
        with pytest.raises(ImageFormatError, match="maxval"):
            decode_ppm(b"P6\n1 1\n65535\n\x00\x00")

    @given(width=st.integers(1, 12), height=st.integers(1, 12),
           seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_p6_roundtrip_property(self, width, height, seed):
        rng = np.random.default_rng(seed)
        img = Image(rng.integers(0, 256, (height, width, 3), dtype=np.uint8))
        assert decode_ppm(encode_ppm(img)) == img


class TestBMP:
    def test_roundtrip(self):
        img = checkerboard()
        assert decode_bmp(encode_bmp(img)) == img

    def test_roundtrip_with_padding(self):
        # Width 3 → row padding needed (9 bytes → 12).
        img = checkerboard(3, 5, cell=1)
        assert decode_bmp(encode_bmp(img)) == img

    def test_bad_magic(self):
        with pytest.raises(ImageFormatError, match="magic"):
            decode_bmp(b"XX" + b"\x00" * 100)

    def test_truncated(self):
        data = encode_bmp(checkerboard())[:-20]
        with pytest.raises(ImageFormatError, match="truncated"):
            decode_bmp(data)

    @given(width=st.integers(1, 10), height=st.integers(1, 10),
           seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, width, height, seed):
        rng = np.random.default_rng(seed)
        img = Image(rng.integers(0, 256, (height, width, 3), dtype=np.uint8))
        assert decode_bmp(encode_bmp(img)) == img


class TestResize:
    def test_target_dimensions(self):
        img = checkerboard(40, 20)
        for method in ("nearest", "bilinear", "box"):
            out = resize(img, 13, 7, method=method)
            assert out.size == (13, 7)

    def test_unknown_method_rejected(self):
        with pytest.raises(ImageFormatError, match="unknown resize"):
            resize(checkerboard(), 4, 4, method="bicubic")

    def test_invalid_target_rejected(self):
        with pytest.raises(ImageFormatError):
            resize_box(checkerboard(), 0, 4)

    def test_identity_resize_nearest(self):
        img = checkerboard()
        assert resize_nearest(img, img.width, img.height) == img

    def test_identity_resize_box(self):
        img = checkerboard()
        assert resize_box(img, img.width, img.height) == img

    def test_uniform_image_stays_uniform(self):
        img = Image.blank(32, 32, color=(37, 99, 201))
        for fn in (resize_nearest, resize_bilinear, resize_box):
            out = fn(img, 7, 5)
            assert np.all(out.pixels.reshape(-1, 3) == (37, 99, 201))

    def test_box_preserves_mean_exactly_for_integer_ratio(self):
        rng = np.random.default_rng(1)
        img = Image(rng.integers(0, 256, (64, 64, 3), dtype=np.uint8))
        out = resize_box(img, 16, 16)
        for a, b in zip(img.mean_color(), out.mean_color()):
            assert b == pytest.approx(a, abs=0.5)

    def test_bilinear_mean_close(self):
        rng = np.random.default_rng(2)
        img = Image(rng.integers(0, 256, (60, 80, 3), dtype=np.uint8))
        out = resize_bilinear(img, 33, 21)
        for a, b in zip(img.mean_color(), out.mean_color()):
            assert b == pytest.approx(a, abs=6.0)

    def test_upscale_supported(self):
        img = checkerboard(8, 8)
        out = resize_bilinear(img, 32, 32)
        assert out.size == (32, 32)

    def test_scale_to_fraction_paper_workload(self):
        """The paper's request: 3440x1440 → 10%."""
        img = Image.blank(3440 // 10, 1440 // 10)  # scaled-down stand-in
        out = scale_to_fraction(img, 0.10)
        assert out.size == (34, 14)

    def test_scale_to_fraction_invalid(self):
        with pytest.raises(ImageFormatError):
            scale_to_fraction(checkerboard(), 0.0)

    def test_scale_never_produces_zero_dims(self):
        out = scale_to_fraction(checkerboard(4, 4), 0.01)
        assert out.width >= 1 and out.height >= 1

    @given(width=st.integers(2, 50), height=st.integers(2, 50),
           tw=st.integers(1, 30), th=st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_resize_dims_property(self, width, height, tw, th):
        img = Image.blank(width, height, color=(100, 100, 100))
        for fn in (resize_nearest, resize_bilinear, resize_box):
            out = fn(img, tw, th)
            assert out.size == (tw, th)
            assert np.all(out.pixels == 100)


class TestSyntheticPhoto:
    def test_paper_dimensions_default(self):
        img = synthetic_photo(344, 144)  # scaled check; full size is slow
        assert img.size == (344, 144)

    def test_deterministic(self):
        assert synthetic_photo(64, 32, seed=5) == synthetic_photo(64, 32, seed=5)

    def test_seed_changes_content(self):
        assert synthetic_photo(64, 32, seed=5) != synthetic_photo(64, 32, seed=6)

    def test_has_texture_not_flat(self):
        img = synthetic_photo(128, 64)
        assert float(img.pixels.std()) > 10.0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            synthetic_photo(0, 10)

    def test_full_paper_size_once(self):
        img = synthetic_photo()
        assert img.size == (3440, 1440)
        thumb = scale_to_fraction(img, 0.10)
        assert thumb.size == (344, 144)
