"""Tests for X13 (repro.bench.prewarm_study): the prewarm policy sweep."""

import json

import pytest

from repro.bench.prewarm_study import (
    POLICY_LADDER,
    PrewarmStudyConfig,
    _synthesize_prewarm_trace,
    _window_counts,
    prewarm_study,
    render_prewarm_report,
)
from repro.sim.rng import _derive_seed

# Small but non-degenerate smoke shape: enough arrivals for the
# forecasters to converge, seconds of wall time to run.
SMOKE = dict(repetitions=1, seed=42, requests=8_000)


@pytest.fixture(scope="module")
def smoke():
    return prewarm_study(**SMOKE)


class TestTraceSynthesis:
    def test_trace_is_sorted_and_covers_all_functions(self):
        config = PrewarmStudyConfig(requests=5_000)
        times, fids = _synthesize_prewarm_trace(config, seed=7)
        assert len(times) == len(fids)
        assert len(times) >= config.requests
        assert (times[1:] >= times[:-1]).all()
        assert fids.min() >= 0
        assert fids.max() < config.total_functions
        # The timer overlay population must actually fire.
        assert (fids >= config.functions).sum() > 0

    def test_trace_is_seed_deterministic(self):
        config = PrewarmStudyConfig(requests=3_000)
        a_times, a_fids = _synthesize_prewarm_trace(config, seed=11)
        b_times, b_fids = _synthesize_prewarm_trace(config, seed=11)
        assert (a_times == b_times).all()
        assert (a_fids == b_fids).all()
        c_times, _ = _synthesize_prewarm_trace(config, seed=12)
        assert len(a_times) != len(c_times) or not (a_times == c_times).all()

    def test_window_counts_partition_the_trace(self):
        config = PrewarmStudyConfig(requests=3_000)
        times, fids = _synthesize_prewarm_trace(config, seed=5)
        counts = _window_counts(config, times, fids)
        assert set(counts) == set(range(config.total_functions))
        total = sum(sum(values) for values in counts.values())
        assert total == len(times)


class TestStudy:
    def test_ladder_is_complete(self, smoke):
        rep = smoke.headline
        assert set(rep.outcomes) == set(POLICY_LADDER)
        for outcome in rep.outcomes.values():
            assert outcome.requests > 0
            assert (outcome.cold_starts + outcome.warm_starts
                    + outcome.queued == outcome.requests)

    def test_reactive_is_the_worst_and_fixed_helps(self, smoke):
        rep = smoke.headline
        reactive = rep.outcomes["reactive"]
        fixed = rep.outcomes["fixed"]
        assert reactive.cold_starts > fixed.cold_starts
        assert reactive.wasted_warm_s == 0.0
        assert fixed.wasted_warm_s > 0.0

    def test_predictive_beats_fixed_on_the_smoke_trace(self, smoke):
        rep = smoke.headline
        assert rep.learned_beats_fixed
        assert rep.oracle_bounds_gap
        learned = rep.outcomes["learned"]
        fixed = rep.outcomes["fixed"]
        assert learned.cold_starts < fixed.cold_starts
        assert learned.cold_p99_ms < fixed.cold_p99_ms
        assert learned.wasted_warm_s <= fixed.wasted_warm_s

    def test_prewarming_actually_happened(self, smoke):
        rep = smoke.headline
        assert rep.outcomes["learned"].prewarm_placements > 0
        assert rep.outcomes["oracle"].prewarm_placements > 0
        assert rep.outcomes["fixed"].prewarm_placements == 0
        assert rep.outcomes["learned"].prefetch_mib > 0.0

    def test_timer_functions_are_covered_by_scheduling(self, smoke):
        rep = smoke.headline
        # The fixed keep-alive cannot cover multi-minute timer periods;
        # the histogram policies prewarm on schedule instead.
        assert (rep.outcomes["learned"].timer_cold_starts
                < rep.outcomes["fixed"].timer_cold_starts)

    def test_study_is_deterministic(self):
        a = prewarm_study(**SMOKE)
        b = prewarm_study(**SMOKE)
        assert a.as_dict() == b.as_dict()

    def test_artifact_is_json_round_trippable(self, smoke):
        artifact = json.loads(json.dumps(smoke.as_dict(), sort_keys=True))
        assert artifact["experiment"] == "prewarm-study"
        assert artifact["reps"][0]["policies"]["learned"]["cold_starts"] >= 0


class TestExemplar:
    def test_live_platform_pipeline_fired(self, smoke):
        exemplar = smoke.exemplar
        assert exemplar["plans"] > 0
        assert exemplar["windows_fed"] > 0
        assert exemplar["prewarm_replicas"] > 0
        assert exemplar["prefetch_requests"] > 0
        assert exemplar["autoscaler_prewarm_events"] > 0
        assert exemplar["autoscaler_events_dropped"] == 0

    def test_exemplar_accounts_wasted_warm_time(self, smoke):
        # The exemplar run GCs idle prewarmed replicas at episode end,
        # so per-function wasted warm time is observable.
        assert isinstance(smoke.exemplar["wasted_warm_ms"], dict)


class TestRendering:
    def test_report_has_the_greppable_verdict_lines(self, smoke):
        report = render_prewarm_report(smoke.as_dict())
        assert "X13" in report
        for policy in POLICY_LADDER:
            assert policy in report
        assert "predictive beats fixed keep-alive: yes" in report
        assert "oracle bounds the gap: yes" in report
        assert "live platform exemplar:" in report

    def test_render_matches_result_render(self, smoke):
        assert smoke.render() == render_prewarm_report(smoke.as_dict())


class TestSeedDerivation:
    def test_rep_seeds_are_distinct(self):
        seeds = {_derive_seed(42, f"prewarm-{rep}") for rep in range(8)}
        assert len(seeds) == 8
