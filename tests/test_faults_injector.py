"""Tests for the fault model and the seeded injector."""

import pytest

from repro import faults, make_world
from repro.core.bake import Prebaker
from repro.core.policy import AfterReady
from repro.faults import (
    IMAGE_CORRUPT,
    REPLICA_CRASH,
    RESTORE_FAIL,
    RESTORE_HANG,
    SITES,
    FaultPlan,
    FaultSpec,
    SnapshotCorrupted,
)
from repro.functions import make_app


class TestFaultSpec:
    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            FaultSpec(RESTORE_FAIL, probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(RESTORE_FAIL, probability=-0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(RESTORE_HANG, probability=0.5, delay_ms=-1.0)

    def test_negative_max_fires_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(RESTORE_FAIL, probability=0.5, max_fires=-1)

    def test_default_delay_by_site(self):
        assert FaultSpec(RESTORE_HANG, 1.0).effective_delay_ms == 1_000.0
        assert FaultSpec(RESTORE_FAIL, 1.0).effective_delay_ms == 0.0
        assert FaultSpec(RESTORE_HANG, 1.0, delay_ms=5.0).effective_delay_ms == 5.0


class TestFaultPlan:
    def test_of_maps_underscores_to_dots(self):
        plan = FaultPlan.of(restore_fail=0.5, replica_crash=0.1)
        assert plan.spec(RESTORE_FAIL).probability == 0.5
        assert plan.spec(REPLICA_CRASH).probability == 0.1
        assert plan.spec(RESTORE_HANG) is None

    def test_uniform_covers_all_sites(self):
        plan = FaultPlan.uniform(0.2)
        assert plan.active_sites() == tuple(sorted(SITES))

    def test_scaled_caps_at_one(self):
        plan = FaultPlan.of(restore_fail=0.6).scaled(10.0)
        assert plan.spec(RESTORE_FAIL).probability == 1.0

    def test_mismatched_spec_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(specs={RESTORE_FAIL: FaultSpec(RESTORE_HANG, 0.5)})

    def test_describe_lists_sites(self):
        plan = FaultPlan(specs={
            RESTORE_FAIL: FaultSpec(RESTORE_FAIL, 0.5, max_fires=2)})
        assert "restore.fail=0.5(max 2)" in plan.describe()
        assert FaultPlan().describe() == "faults: none"


class TestInjectorLifecycle:
    def test_uninstalled_world_never_fires_and_draws_nothing(self, kernel):
        assert kernel.faults is None
        assert faults.should_fire(kernel, RESTORE_FAIL) is False
        assert faults.extra_delay_ms(kernel, RESTORE_HANG) == 0.0
        # The zero-cost path must not even create the fault stream.
        assert f"fault.{RESTORE_FAIL}" not in kernel.streams._streams

    def test_install_and_uninstall(self, kernel):
        injector = faults.install(kernel, FaultPlan.of(restore_fail=1.0))
        assert faults.active(kernel) is injector
        assert faults.should_fire(kernel, RESTORE_FAIL) is True
        faults.uninstall(kernel)
        assert kernel.faults is None
        assert faults.should_fire(kernel, RESTORE_FAIL) is False

    def test_unarmed_site_consumes_no_randomness(self, kernel):
        injector = faults.install(kernel, FaultPlan.of(restore_fail=1.0))
        assert faults.should_fire(kernel, REPLICA_CRASH) is False
        assert injector.records == []
        assert f"fault.{REPLICA_CRASH}" not in kernel.streams._streams

    def test_zero_probability_site_consumes_no_randomness(self, kernel):
        injector = faults.install(kernel, FaultPlan.of(restore_fail=0.0))
        assert faults.should_fire(kernel, RESTORE_FAIL) is False
        assert injector.records == []

    def test_max_fires_caps_injection(self, kernel):
        plan = FaultPlan(specs={
            RESTORE_FAIL: FaultSpec(RESTORE_FAIL, 1.0, max_fires=2)})
        injector = faults.install(kernel, plan)
        fires = [faults.should_fire(kernel, RESTORE_FAIL) for _ in range(5)]
        assert fires == [True, True, False, False, False]
        assert injector.fired_count(RESTORE_FAIL) == 2
        # Capped crossings are not even recorded as decisions.
        assert len(injector.records) == 2

    def test_fired_decisions_are_counted_in_metrics(self):
        world = make_world(seed=9, observe=True)
        faults.install(world.kernel, FaultPlan.of(restore_fail=1.0))
        faults.should_fire(world.kernel, RESTORE_FAIL)
        assert world.kernel.obs.metrics.value(
            "fault_injected_total", labels={"site": RESTORE_FAIL}) == 1


class TestDeterminism:
    @staticmethod
    def _schedule(seed: int) -> str:
        world = make_world(seed=seed)
        injector = faults.install(world.kernel, FaultPlan.uniform(0.5))
        for i in range(50):
            site = SITES[i % len(SITES)]
            faults.should_fire(world.kernel, site, detail=f"x{i}")
            world.kernel.clock.advance(1.0)
        return injector.schedule_digest()

    def test_same_seed_same_schedule(self):
        assert self._schedule(42) == self._schedule(42)

    def test_different_seed_different_schedule(self):
        assert self._schedule(42) != self._schedule(43)

    def test_new_site_does_not_perturb_existing_streams(self):
        """Arming an extra site must not change existing sites' draws."""
        def draws(plan):
            world = make_world(seed=42)
            injector = faults.install(world.kernel, plan)
            for _ in range(20):
                faults.should_fire(world.kernel, RESTORE_FAIL)
                faults.should_fire(world.kernel, REPLICA_CRASH)
            return [r.draw for r in injector.records
                    if r.site == RESTORE_FAIL]

        baseline = draws(FaultPlan.of(restore_fail=0.5))
        widened = draws(FaultPlan.of(restore_fail=0.5, replica_crash=0.5))
        assert baseline == widened

    def test_schedule_lines_render(self, kernel):
        injector = faults.install(kernel, FaultPlan.of(restore_fail=1.0))
        faults.should_fire(kernel, RESTORE_FAIL, detail="img-1")
        (line,) = injector.schedule_lines()
        assert "restore.fail" in line and "FIRE" in line and "img-1" in line


class TestCorruptImage:
    def test_corrupt_image_breaks_integrity(self, kernel):
        prebaker = Prebaker(kernel)
        report = prebaker.bake(make_app("noop"), policy=AfterReady())
        image = report.image
        image.verify_integrity()
        faults.install(kernel, FaultPlan.of(image_corrupt=1.0))
        assert faults.corrupt_image(kernel, image) is True
        with pytest.raises(SnapshotCorrupted):
            image.verify_integrity()

    def test_corrupt_image_noop_when_uninstalled(self, kernel):
        prebaker = Prebaker(kernel)
        report = prebaker.bake(make_app("noop"), policy=AfterReady())
        assert faults.corrupt_image(kernel, report.image) is False
        report.image.verify_integrity()
