"""End-to-end causal tracing: one request, one connected span tree.

The tentpole's propagation claim, pinned down on the full platform
path (router → deployer → starter → replica → runtime): every span a
request causes carries the trace id minted at the entry point, the
tree is connected (each non-root span's parent exists in the same
trace), and nothing stays open afterwards — including under WORKING_SET
restores and injected transient restore failures, whose retry/backoff
work must land in the *same* request's trace.
"""

import pytest

from repro import make_world, obs
from repro.criu.restore import RestoreMode
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faults import FaultPlan, FaultSpec, RESTORE_FAIL
from repro.functions import make_app
from repro.runtime.base import Request


def observed_platform(seed=11):
    world = make_world(seed=seed, observe=True)
    return world.kernel, FaaSPlatform(world.kernel, PlatformConfig())


def spans_by_trace(kernel, trace_id):
    return kernel.obs.tracer.by_trace(trace_id)


def assert_connected_tree(spans):
    """Exactly one root; every parent id resolves inside the trace."""
    ids = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1, (
        f"expected one root, got {[s.name for s in roots]}")
    orphans = [s.name for s in spans
               if s.parent_id is not None and s.parent_id not in ids]
    assert not orphans, f"orphaned spans (parent outside trace): {orphans}"
    assert all(s.duration_ms is not None for s in spans), "open span in trace"


class TestSingleRequestTrace:
    @pytest.mark.parametrize("restore_mode",
                             [RestoreMode.EAGER, RestoreMode.WORKING_SET])
    def test_cold_start_spans_share_one_trace(self, restore_mode):
        kernel, platform = observed_platform()
        platform.register_function(lambda: make_app("markdown"),
                                   start_technique="prebake",
                                   restore_mode=restore_mode)
        request = Request()
        platform.invoke("markdown", request)
        assert request.trace is not None, "router did not mint a trace"
        spans = spans_by_trace(kernel, request.trace.trace_id)
        assert_connected_tree(spans)
        names = {s.name for s in spans}
        # The cold-start critical path is all causally attached: routing,
        # provisioning, the restore itself, and first-request serving.
        assert {"router.route", "deployer.provision",
                "criu.restore", "replica.request"} <= names
        assert kernel.obs.tracer.open_spans() == []

    def test_vanilla_cold_start_trace_is_connected(self):
        kernel, platform = observed_platform()
        platform.register_function(lambda: make_app("noop"))
        request = Request()
        platform.invoke("noop", request)
        spans = spans_by_trace(kernel, request.trace.trace_id)
        assert_connected_tree(spans)
        assert "runtime.boot" in {s.name for s in spans}

    def test_warm_request_joins_its_own_trace_not_the_cold_one(self):
        kernel, platform = observed_platform()
        platform.register_function(lambda: make_app("noop"))
        cold, warm = Request(), Request()
        platform.invoke("noop", cold)
        platform.invoke("noop", warm)
        assert cold.trace.trace_id != warm.trace.trace_id
        warm_spans = spans_by_trace(kernel, warm.trace.trace_id)
        assert_connected_tree(warm_spans)
        # No provisioning happens on the warm path.
        assert "deployer.provision" not in {s.name for s in warm_spans}

    def test_preminted_context_is_adopted_downstream(self):
        """A caller-supplied trace context (an upstream gateway) wins."""
        kernel, platform = observed_platform()
        platform.register_function(lambda: make_app("noop"),
                                   start_technique="prebake")
        upstream = obs.TraceContext(trace_id="edge-7f3a")
        request = Request(trace=upstream)
        platform.invoke("noop", request)
        assert request.trace is upstream
        spans = spans_by_trace(kernel, "edge-7f3a")
        assert spans, "downstream spans did not adopt the upstream trace"
        names = {s.name for s in spans}
        assert {"router.route", "criu.restore"} <= names


class TestTraceUnderFaults:
    def test_retried_restore_stays_in_one_trace_without_leaks(self):
        """Transient restore failures: the failed attempts, their
        backoffs, and the eventually-successful restore all belong to
        the same request trace, with the failed spans closed as errors
        and zero spans left open."""
        kernel, platform = observed_platform()
        platform.register_function(lambda: make_app("markdown"),
                                   start_technique="prebake")
        platform.install_faults(FaultPlan(specs={RESTORE_FAIL: FaultSpec(
            RESTORE_FAIL, 1.0, max_fires=2)}))
        request = Request()
        response = platform.invoke("markdown", request)
        assert response.status == 200
        spans = spans_by_trace(kernel, request.trace.trace_id)
        assert_connected_tree(spans)
        restores = [s for s in spans if s.name == "criu.restore"]
        assert len(restores) == 3  # two injected failures + the success
        assert [s.status for s in restores].count("error") == 2
        assert all(s.attributes.get("error_type") == "RestoreFailed"
                   for s in restores if s.status == "error")
        assert kernel.obs.tracer.open_spans() == []

    @pytest.mark.parametrize("restore_mode",
                             [RestoreMode.EAGER, RestoreMode.WORKING_SET])
    def test_fallback_after_exhausted_retries_joins_the_trace(
            self, restore_mode):
        kernel, platform = observed_platform()
        platform.register_function(lambda: make_app("noop"),
                                   start_technique="prebake",
                                   restore_mode=restore_mode)
        platform.install_faults(FaultPlan.of(restore_fail=1.0))
        request = Request()
        response = platform.invoke("noop", request)
        assert response.status == 200
        spans = spans_by_trace(kernel, request.trace.trace_id)
        assert_connected_tree(spans)
        names = [s.name for s in spans]
        # The vanilla fallback boot rides the same causal trace as the
        # restore attempts that forced it.
        assert "runtime.boot" in names
        assert any(s.name == "criu.restore" and s.status == "error"
                   for s in spans)
        assert kernel.obs.tracer.open_spans() == []


class TestExemplars:
    def test_cold_start_histogram_links_back_to_the_trace(self):
        kernel, platform = observed_platform()
        platform.register_function(lambda: make_app("markdown"),
                                   start_technique="prebake")
        request = Request()
        platform.invoke("markdown", request)
        family = next(f for f in kernel.obs.metrics.families()
                      if f.name == "router_cold_start_wait_ms")
        exemplars = [pair for histogram in family.series.values()
                     for pair in histogram.exemplars.values()]
        assert exemplars, "cold-start histogram recorded no exemplar"
        assert any(trace_id == request.trace.trace_id
                   for trace_id, _value in exemplars)
