"""Flight recorder: ring semantics, serialization, and zero-cost-off.

Three claims from the issue are pinned here:

* flight events survive an encode/decode round-trip exactly (dict and
  JSONL forms);
* the bounded ring evicts oldest-first and accounts the drops;
* a world with the recorder *off* produces bit-identical startup
  samples to one with it on — the tape reads the clock but never
  advances it (the disabled-path/overhead guard, satellite 6).
"""

import pytest

from repro import make_world, obs
from repro.bench.harness import run_startup_experiment
from repro.core.manager import PrebakeManager
from repro.faas import FaaSPlatform
from repro.functions import make_app
from repro.obs.flight import (
    EVENT_KINDS,
    FLIGHT_SCHEMA,
    FlightEvent,
    FlightRecorder,
    METRIC_SAMPLE,
    read_flight_jsonl,
    write_flight_jsonl,
)


class TestEventRoundTrip:
    def test_dict_round_trip_exact(self):
        event = FlightEvent(seq=7, at_ms=123.456789, kind="restore.started",
                            trace_id="t-0003", span_id=9,
                            attrs={"image": "img-000001", "mib": 14.056})
        clone = FlightEvent.from_dict(event.as_dict())
        assert clone.as_dict() == event.as_dict()
        assert clone.seq == 7
        assert clone.at_ms == 123.456789
        assert clone.trace_id == "t-0003"
        assert clone.span_id == 9
        assert clone.attrs == event.attrs

    def test_node_field_round_trips_and_hoists_from_attrs(self):
        event = FlightEvent(seq=1, at_ms=5.0, kind="restore.started",
                            node="node-3", attrs={"image": "img-000001"})
        clone = FlightEvent.from_dict(event.as_dict())
        assert clone.node == "node-3"
        assert clone.as_dict()["node"] == "node-3"
        # Recording with a node= attr labels the event without callers
        # having to know about the dedicated field.
        hoisted = FlightEvent(seq=2, at_ms=6.0, kind="restore.started",
                              attrs={"node": "store-1"})
        assert hoisted.node == "store-1"
        # Legacy events without a node stay node-less after a round
        # trip (no "node" key invented on the wire).
        legacy = FlightEvent(seq=3, at_ms=7.0, kind="restore.started")
        assert legacy.node is None
        assert "node" not in legacy.as_dict()
        assert FlightEvent.from_dict(legacy.as_dict()).node is None

    def test_jsonl_round_trip_preserves_order_and_payload(self, tmp_path):
        kernel = make_world(seed=3).kernel
        recorder = obs.install_flight(kernel)
        for index in range(5):
            kernel.clock.advance(10.0)
            recorder.record("request.admitted", request_id=index)
        path = write_flight_jsonl(tmp_path / "tape.jsonl", recorder.events())
        loaded = read_flight_jsonl(path)
        assert [e.as_dict() for e in loaded] == \
            [e.as_dict() for e in recorder.events()]
        # Tape order is arrival order.
        assert [e.attrs["request_id"] for e in loaded] == list(range(5))

    def test_from_dict_rejects_garbage(self):
        from repro.obs.flight import FlightError

        assert FLIGHT_SCHEMA == 1
        with pytest.raises(FlightError):
            FlightEvent.from_dict({"not": "an event"})
        with pytest.raises(FlightError):
            FlightEvent.from_dict({"kind": "deploy", "seq": "x",
                                   "at_ms": 0.0})

    def test_kind_catalogue_is_stable(self):
        # Postmortems and dashboards key on these strings.
        assert "restore.failed" in EVENT_KINDS
        assert "fault.injected" in EVENT_KINDS
        assert "anomaly.detected" in EVENT_KINDS


class TestRingEviction:
    def test_oldest_evicted_first_and_drops_counted(self):
        kernel = make_world(seed=1).kernel
        recorder = FlightRecorder(kernel.clock, capacity=4)
        for index in range(10):
            recorder.record("request.admitted", request_id=index)
        kept = [e.attrs["request_id"] for e in recorder.events()]
        assert kept == [6, 7, 8, 9]
        assert len(recorder) == 4
        assert recorder.total == 10
        assert recorder.dropped == 6
        # seq numbering is global, not per-ring-slot.
        assert [e.seq for e in recorder.events()] == [7, 8, 9, 10]

    def test_evictions_count_into_flight_dropped_total(self):
        from repro.obs.metrics import MetricsRegistry

        kernel = make_world(seed=1).kernel
        registry = MetricsRegistry()
        recorder = FlightRecorder(kernel.clock, capacity=4, metrics=registry)
        for index in range(10):
            recorder.record("request.admitted", request_id=index)
        assert recorder.dropped == 6
        assert registry.value("flight_dropped_total") == 6.0

    def test_installed_recorder_reports_drops_to_world_metrics(self):
        kernel = make_world(seed=2, observe=True).kernel
        recorder = obs.install_flight(kernel, capacity=2)
        for index in range(5):
            recorder.record("request.admitted", request_id=index)
        assert kernel.obs.metrics.value("flight_dropped_total") == 3.0

    def test_last_n_and_kind_filter(self):
        kernel = make_world(seed=1).kernel
        recorder = FlightRecorder(kernel.clock, capacity=8)
        recorder.record("request.admitted", request_id=0)
        recorder.record("restore.started", image="img-1")
        recorder.record("request.admitted", request_id=1)
        assert [e.kind for e in recorder.last(2)] == \
            ["restore.started", "request.admitted"]
        admitted = recorder.events(kind="request.admitted")
        assert [e.attrs["request_id"] for e in admitted] == [0, 1]


class TestTraceCorrelation:
    def test_events_inside_span_carry_trace_and_span(self):
        kernel = make_world(seed=5, observe=True).kernel
        obs.install_flight(kernel)
        with obs.span(kernel, "unit.work"):
            obs.record(kernel, "deploy", function="noop")
        (event,) = kernel.flight.events()
        (span,) = kernel.obs.tracer.find("unit.work")
        assert event.trace_id == span.trace_id
        assert event.span_id == span.span_id

    def test_events_outside_span_are_uncorrelated(self):
        kernel = make_world(seed=5, observe=True).kernel
        obs.install_flight(kernel)
        obs.record(kernel, "deploy", function="noop")
        (event,) = kernel.flight.events()
        assert event.trace_id is None
        assert event.span_id is None


class TestLifecycleCoverage:
    def test_platform_request_leaves_a_readable_tape(self):
        kernel = make_world(seed=11, observe=True).kernel
        obs.install_flight(kernel)
        platform = FaaSPlatform(kernel)
        platform.register_function(lambda: make_app("markdown"),
                                   start_technique="prebake")
        platform.invoke("markdown")
        kinds = {e.kind for e in kernel.flight.events()}
        assert {"request.admitted", "restore.started", "restore.finished",
                "replica.provisioned", "request.routed"} <= kinds

    def test_manager_deploy_lands_on_tape(self):
        kernel = make_world(seed=11, observe=True).kernel
        obs.install_flight(kernel)
        PrebakeManager(kernel).deploy(make_app("noop"))
        (event,) = kernel.flight.events(kind="deploy")
        assert event.attrs["function"] == "noop"
        assert event.attrs["version"] == 1

    def test_recording_off_is_a_noop(self):
        kernel = make_world(seed=11).kernel
        assert kernel.flight is None
        obs.record(kernel, "deploy", function="noop")  # must not raise
        manager = PrebakeManager(kernel)
        manager.deploy(make_app("noop"))
        assert kernel.flight is None


class TestDisabledPathOverheadGuard:
    def test_samples_bit_identical_with_and_without_tape(self):
        """Satellite 6: the fig3 harness measurement is unchanged by
        the recorder — it never touches the clock or RNG, so the
        committed perf-gate baselines hold with telemetry on."""
        plain = run_startup_experiment("markdown", "prebake",
                                       repetitions=3, seed=21)
        sink = []
        flight = []
        taped = run_startup_experiment("markdown", "prebake",
                                       repetitions=3, seed=21,
                                       trace_sink=sink, flight_sink=flight)
        assert [s.startup_ms for s in taped.samples] == \
            [s.startup_ms for s in plain.samples]
        assert flight  # the tape did record the lifecycle
        reps = {record["rep"] for record in flight}
        assert reps == {0, 1, 2}

    def test_metric_sampling_only_when_opted_in(self):
        kernel = make_world(seed=2, observe=True).kernel
        obs.install_flight(kernel)  # sample_metrics defaults off
        obs.observe(kernel, "criu_restore_duration_ms", 12.5)
        assert kernel.flight.events(kind=METRIC_SAMPLE) == []
        obs.uninstall_flight(kernel)
        obs.install_flight(kernel, sample_metrics=True)
        obs.observe(kernel, "criu_restore_duration_ms", 12.5)
        (sample,) = kernel.flight.events(kind=METRIC_SAMPLE)
        assert sample.attrs["metric"] == "criu_restore_duration_ms"
        assert sample.attrs["value"] == 12.5


class TestLogTraceStamping:
    def test_log_lines_carry_trace_id_when_span_open(self, capsys):
        """Satellite 2: structured stderr lines gain ``trace_id=`` when
        a provider is bound and a span is open."""
        from repro.obs.log import bound_trace_provider, get_logger

        kernel = make_world(seed=9, observe=True).kernel
        logger = get_logger("bench")
        with bound_trace_provider(kernel.obs.tracer.current_trace_id):
            logger.info("outside.span", step=1)
            with obs.span(kernel, "unit.work") as span:
                logger.info("inside.span", step=2)
                trace_id = span.trace_id
        logger.info("after.unbind", step=3)
        err = capsys.readouterr().err
        lines = {line.split("event=")[1].split()[0]: line
                 for line in err.strip().splitlines()}
        assert "trace_id" not in lines["outside.span"]
        assert f"trace_id={trace_id}" in lines["inside.span"]
        assert "trace_id" not in lines["after.unbind"]

    def test_explicit_trace_id_field_wins(self, capsys):
        from repro.obs.log import bound_trace_provider, get_logger

        logger = get_logger("bench")
        with bound_trace_provider(lambda: "t-provider"):
            logger.info("explicit.field", trace_id="t-mine")
        err = capsys.readouterr().err
        assert "trace_id=t-mine" in err
        assert "t-provider" not in err
