"""Tests for the restore side of the CRIU protocol."""

import pytest

from repro.criu.checkpoint import CheckpointEngine
from repro.criu.restore import RestoreEngine, RestoreError, RestoreMode
from repro.osproc.process import Capability, ProcessState
from repro.sim.costmodel import DEFAULT_COST_MODEL


@pytest.fixture
def engines(kernel):
    return CheckpointEngine(kernel), RestoreEngine(kernel)


@pytest.fixture
def donor(kernel):
    proc = kernel.clone(kernel.init_process, comm="java")
    kernel.fs.ensure("/bin/java", size=1000)
    kernel.execve(proc, "/bin/java", argv=["java", "-jar", "fn.jar"])
    proc.address_space.grow_anon("heap", 3.0, content_tag="heap-data")
    jar = kernel.fs.ensure("/fn.jar", size=128 * 1024)
    proc.open_fd(jar, flags="r")
    return proc


class TestRestoreProtocol:
    def test_restore_produces_running_process(self, engines, donor, kernel):
        dump, restore = engines
        image = dump.dump(donor, leave_running=False)
        proc = restore.restore(image)
        assert proc.state is ProcessState.RUNNING
        assert proc.comm == donor.comm
        assert proc.argv == ["java", "-jar", "fn.jar"]

    def test_restored_memory_matches_dump(self, engines, donor):
        dump, restore = engines
        expected_rss = donor.address_space.rss_bytes
        expected_labels = sorted(v.label for v in donor.address_space.vmas)
        image = dump.dump(donor, leave_running=False)
        proc = restore.restore(image)
        assert proc.address_space.rss_bytes == expected_rss
        assert sorted(v.label for v in proc.address_space.vmas) == expected_labels

    def test_restored_page_tags_match(self, engines, donor):
        dump, restore = engines
        image = dump.dump(donor, leave_running=False)
        proc = restore.restore(image)
        heap = proc.address_space.find_by_label("heap")
        assert all(p.content_tag == "heap-data" for p in heap.pages.values())

    def test_restored_fds_reopened(self, engines, donor):
        dump, restore = engines
        image = dump.dump(donor, leave_running=False)
        proc = restore.restore(image)
        assert [d.file.path for d in proc.open_files()] == ["/fn.jar"]

    def test_restore_gets_fresh_pid_by_default(self, engines, donor):
        dump, restore = engines
        original_pid = donor.pid
        image = dump.dump(donor, leave_running=False)
        proc = restore.restore(image)
        assert proc.pid != original_pid

    def test_preserve_pid(self, engines, donor):
        dump, restore = engines
        original_pid = donor.pid
        image = dump.dump(donor, leave_running=False)
        proc = restore.restore(image, preserve_pid=True)
        assert proc.pid == original_pid

    def test_preserve_pid_conflict_rejected(self, engines, donor):
        dump, restore = engines
        image = dump.dump(donor, leave_running=True)  # donor still alive
        with pytest.raises(RestoreError, match="already alive"):
            restore.restore(image, preserve_pid=True)

    def test_restore_gets_fresh_namespaces(self, engines, donor):
        dump, restore = engines
        image = dump.dump(donor, leave_running=False)
        proc = restore.restore(image)
        assert proc.namespaces.ids() != image.namespace_ids

    def test_unprivileged_parent_rejected(self, engines, donor, kernel):
        dump, restore = engines
        image = dump.dump(donor, leave_running=False)
        unprivileged = kernel.clone(kernel.init_process, inherit_capabilities=False)
        with pytest.raises(RestoreError, match="capability"):
            restore.restore(image, parent=unprivileged)

    def test_cap_checkpoint_restore_suffices(self, engines, donor, kernel):
        """The Linux 5.9 capability [11] relaxes the privilege need."""
        dump, restore = engines
        image = dump.dump(donor, leave_running=False)
        parent = kernel.clone(kernel.init_process, inherit_capabilities=False)
        parent.capabilities.add(Capability.CHECKPOINT_RESTORE)
        proc = restore.restore(image, parent=parent)
        assert proc.state is ProcessState.RUNNING

    def test_restore_warms_file_backed_pages(self, engines, donor, kernel):
        dump, restore = engines
        libjvm = kernel.fs.lookup("/bin/java")
        image = dump.dump(donor, leave_running=False)
        kernel.page_cache.drop_all()
        restore.restore(image)
        assert kernel.page_cache.warmth(libjvm) == 1.0

    def test_many_replicas_from_one_snapshot(self, engines, donor):
        """§3.1: one snapshot restores any number of replicas."""
        dump, restore = engines
        image = dump.dump(donor, leave_running=False)
        procs = [restore.restore(image) for _ in range(5)]
        assert len({p.pid for p in procs}) == 5
        rss = {p.address_space.rss_bytes for p in procs}
        assert len(rss) == 1


class TestRestoreCosts:
    def _image(self, kernel, mib):
        dump = CheckpointEngine(kernel)
        proc = kernel.clone(kernel.init_process)
        proc.address_space.grow_anon("heap", mib)
        return dump.dump(proc, leave_running=False)

    def test_restore_duration_scales_with_size(self, quiet_kernel):
        restore = RestoreEngine(quiet_kernel)
        small = self._image(quiet_kernel, 5.0)
        big = self._image(quiet_kernel, 80.0)
        t0 = quiet_kernel.clock.now
        restore.restore(small)
        small_ms = quiet_kernel.clock.now - t0
        t0 = quiet_kernel.clock.now
        restore.restore(big)
        big_ms = quiet_kernel.clock.now - t0
        m = DEFAULT_COST_MODEL
        assert big_ms - small_ms == pytest.approx(
            (big.total_mib - small.total_mib) * m.restore_per_mib_ms, rel=0.05)

    def test_override_duration(self, quiet_kernel):
        restore = RestoreEngine(quiet_kernel)
        image = self._image(quiet_kernel, 50.0)
        t0 = quiet_kernel.clock.now
        restore.restore(image, duration_override_ms=10.0)
        elapsed = quiet_kernel.clock.now - t0
        # 10ms + criu clone/exec spawn.
        assert elapsed == pytest.approx(
            10.0 + DEFAULT_COST_MODEL.clone_ms + DEFAULT_COST_MODEL.exec_ms, rel=0.01)

    def test_in_memory_restore_cheaper(self, quiet_kernel):
        restore = RestoreEngine(quiet_kernel)
        image = self._image(quiet_kernel, 60.0)
        t0 = quiet_kernel.clock.now
        restore.restore(image, in_memory=False)
        disk_ms = quiet_kernel.clock.now - t0
        t0 = quiet_kernel.clock.now
        restore.restore(image, in_memory=True)
        mem_ms = quiet_kernel.clock.now - t0
        assert mem_ms < disk_ms

    def test_lazy_restore_defers_cost(self, quiet_kernel):
        restore = RestoreEngine(quiet_kernel)
        image = self._image(quiet_kernel, 60.0)
        t0 = quiet_kernel.clock.now
        eager_proc = restore.restore(image, mode=RestoreMode.EAGER)
        eager_ms = quiet_kernel.clock.now - t0
        t0 = quiet_kernel.clock.now
        lazy_proc = restore.restore(image, mode=RestoreMode.LAZY)
        lazy_ms = quiet_kernel.clock.now - t0
        assert lazy_ms < eager_ms
        debt = lazy_proc.payload["lazy_restore_debt_ms"]
        assert debt > 0
        assert lazy_ms + debt == pytest.approx(eager_ms, rel=0.02)
        assert "lazy_restore_debt_ms" not in eager_proc.payload
