"""Tests for the per-figure reproduction entry points (small reps)."""

import pytest

from repro.bench.figures import (
    ablation_restore,
    ablation_snapshot_point,
    factorial,
    figure3,
    figure4,
    figure5,
    figure7,
    section5,
)

REPS = 12


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3(repetitions=REPS, seed=3)

    def test_three_functions(self, result):
        assert [r.function for r in result.rows] == [
            "noop", "markdown", "image-resizer"]

    def test_prebake_always_wins(self, result):
        for row in result.rows:
            assert row.prebake.median_ms < row.vanilla.median_ms

    def test_improvements_ordered_like_paper(self, result):
        """NOOP is the worst case, Image Resizer the best (paper §1)."""
        by_name = {r.function: r.improvement_pct for r in result.rows}
        assert by_name["noop"] < by_name["markdown"] < by_name["image-resizer"]

    def test_differences_significant(self, result):
        assert all(row.mwu_p < 0.01 for row in result.rows)

    def test_confidence_intervals_disjoint(self, result):
        """Fig 3: 'neither the confidence intervals ... intersect'."""
        for row in result.rows:
            assert not row.vanilla.ci().overlaps(row.prebake.ci())

    def test_render_contains_table(self, result):
        text = result.render()
        assert "Figure 3" in text
        assert "image-resizer" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4(repetitions=REPS, seed=4)

    def test_clone_exec_tiny_fraction(self, result):
        """Paper: CLONE and EXEC contribute a tiny fraction."""
        for cell in result.cells:
            tiny = cell.phases["CLONE"] + cell.phases["EXEC"]
            assert tiny < 0.05 * cell.total_ms

    def test_vanilla_rts_near_70ms_all_functions(self, result):
        """Paper: 'no statistical difference between the RTS phase
        values for all evaluated functions' (~70 ms)."""
        rts = [c.phases["RTS"] for c in result.cells if c.technique == "vanilla"]
        assert all(v == pytest.approx(70.0, rel=0.05) for v in rts)

    def test_prebake_rts_zero(self, result):
        """Paper: 'prebaking brings the RTS down to 0ms'."""
        for cell in result.cells:
            if cell.technique == "prebake":
                assert cell.phases["RTS"] == 0.0

    def test_prebake_dominated_by_appinit(self, result):
        for cell in result.cells:
            if cell.technique == "prebake":
                assert cell.phases["APPINIT"] > 0.9 * cell.total_ms

    def test_vanilla_appinit_ratio_resizer_vs_noop(self, result):
        """Paper: resizer APPINIT ≈ 7.18x NOOP under vanilla."""
        noop = result.cell("noop", "vanilla").phases["APPINIT"]
        resizer = result.cell("image-resizer", "vanilla").phases["APPINIT"]
        assert resizer / noop == pytest.approx(7.18, abs=0.9)

    def test_prebake_appinit_ratio_shrinks(self, result):
        """Paper: that ratio drops to ≈1.43 under prebaking."""
        noop = result.cell("noop", "prebake").phases["APPINIT"]
        resizer = result.cell("image-resizer", "prebake").phases["APPINIT"]
        assert resizer / noop == pytest.approx(1.43, abs=0.3)


class TestFigure5:
    def test_startup_grows_with_size(self):
        result = figure5(repetitions=REPS, seed=5)
        medians = [s.median_ms for s in result.summaries]
        assert medians[0] < medians[1] < medians[2]
        assert medians[2] > 6 * medians[0]


class TestFactorial:
    @pytest.fixture(scope="class")
    def result(self):
        return factorial(repetitions=REPS, seed=6)

    def test_nine_cells(self, result):
        assert len(result.cells) == 9

    def test_treatment_ordering_each_size(self, result):
        for name in ("synthetic-small", "synthetic-medium", "synthetic-big"):
            vanilla = result.summary(name, "vanilla").median_ms
            nowarm = result.summary(name, "nowarmup").median_ms
            warm = result.summary(name, "warmup").median_ms
            assert warm < nowarm < vanilla

    def test_ratio_helper(self, result):
        assert result.ratio_pct("synthetic-small", "warmup") > 300

    def test_renders(self, result):
        assert "Figure 6" in result.render_figure6()
        assert "Table 1" in result.render_table1()
        assert "(219.25;220.32)" in result.render_table1()  # paper column


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7(requests=100, seed=7)

    def test_ecdfs_coincide(self, result):
        """Paper: 'Both ECDFs pretty much coincide'."""
        for row in result.rows:
            assert row.mwu_p > 0.05
            assert row.ks < 0.2

    def test_no_errors(self, result):
        for row in result.rows:
            assert row.vanilla.errors == 0
            assert row.prebake.errors == 0

    def test_service_medians_close(self, result):
        for row in result.rows:
            ratio = row.prebake.median_ms / row.vanilla.median_ms
            assert 0.85 < ratio < 1.15


class TestSection5:
    def test_integration_flow(self):
        result = section5(seed=8)
        assert len(result.rows) == 4
        by_template = {(fn, tpl): cold for fn, tpl, _build, cold in result.rows}
        vanilla_cold = by_template[("markdown", "java8")]
        criu_cold = by_template[("markdown", "java8-criu")]
        warm_cold = by_template[("markdown", "java8-criu-warm")]
        # Both snapshot templates halve the cold start; warm and
        # after-ready are near-identical for markdown (no class set).
        assert criu_cold < 0.7 * vanilla_cold
        assert warm_cold < 0.7 * vanilla_cold

    def test_build_slower_for_criu_templates(self):
        result = section5(seed=9)
        builds = {tpl: b for _fn, tpl, b, _c in result.rows}
        assert builds["java8-criu"] > builds["java8"]


class TestAblations:
    @pytest.mark.slow
    def test_restore_ablation_ordering(self):
        result = ablation_restore(repetitions=8, seed=10)
        rows = {(f, v): m for f, v, m in result.rows}
        # In-memory restore beats disk; lazy start beats eager start.
        assert rows[("synthetic-big", "eager-inmem")] < rows[("synthetic-big", "eager-disk")]
        assert rows[("synthetic-big", "lazy-disk")] < rows[("synthetic-big", "eager-disk")]

    def test_snapshot_point_ablation_ordering(self):
        result = ablation_snapshot_point(repetitions=8, seed=11)
        rows = {(f, v): m for f, v, m in result.rows}
        # Later snapshot points start faster. Markdown has no lazy
        # class set, so warm ≈ ready there; the warm benefit shows on
        # the synthetic function.
        assert rows[("markdown", "after-ready")] < \
            rows[("markdown", "after-runtime-boot")]
        assert (rows[("synthetic-medium", "after-warmup-1")]
                < rows[("synthetic-medium", "after-ready")]
                < rows[("synthetic-medium", "after-runtime-boot")])

    def test_extra_warmup_requests_no_worse(self):
        result = ablation_snapshot_point(repetitions=8, seed=12)
        rows = {(f, v): m for f, v, m in result.rows}
        assert rows[("synthetic-medium", "after-warmup-5")] <= \
            rows[("synthetic-medium", "after-warmup-1")] * 1.1
