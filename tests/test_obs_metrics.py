"""Tests for the shared metrics registry (counters/gauges/histograms)."""

import pytest

from repro.obs.metrics import (
    SUBBUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
    bucket_index,
    bucket_midpoint,
    label_set,
    labels_match,
)


class TestLabelSets:
    def test_canonical_ordering(self):
        assert label_set({"b": "2", "a": "1"}) == (("a", "1"), ("b", "2"))
        assert label_set(None) == ()

    def test_subset_matching(self):
        series = label_set({"fn": "a", "code": "200"})
        assert labels_match(series, {})
        assert labels_match(series, {"fn": "a"})
        assert not labels_match(series, {"fn": "b"})
        assert not labels_match(series, {"zone": "eu"})


class TestBucketing:
    def test_relative_error_bound(self):
        # log-linear bucketing bounds relative error by 1/SUBBUCKETS
        # across ~9 orders of magnitude
        for value in (0.013, 0.7, 1.0, 7.3, 250.0, 9_000.0, 3.2e6):
            mid = bucket_midpoint(bucket_index(value))
            assert abs(mid - value) / value <= 1.0 / SUBBUCKETS

    def test_nonpositive_values_share_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-5.0) == 0
        assert bucket_midpoint(0) == 0.0

    def test_indices_monotonic_in_value(self):
        values = [0.01 * 1.3 ** i for i in range(60)]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)


class TestHistogram:
    def test_count_sum_mean_min_max(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 16.0
        assert h.mean == 4.0
        assert h.min_value == 1.0
        assert h.max_value == 10.0

    def test_extreme_quantiles_are_exact(self):
        h = Histogram()
        for v in (0.3, 5.0, 700.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.3
        assert h.quantile(1.0) == 700.0

    def test_median_within_error_bound(self):
        h = Histogram()
        for i in range(1, 102):
            h.observe(float(i))
        assert h.quantile(0.5) == pytest.approx(51.0, rel=1.0 / SUBBUCKETS)

    def test_quantile_never_escapes_observed_range(self):
        h = Histogram()
        h.observe(99.9)
        for q in (0.01, 0.5, 0.99):
            assert h.quantile(q) == 99.9

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(MetricsError, match=r"\[0, 1\]"):
            Histogram().quantile(1.5)

    def test_percentiles_shape(self):
        h = Histogram()
        h.observe(4.0)
        assert set(h.percentiles()) == {0.5, 0.95, 0.99}


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits", labels={"fn": "a"})
        reg.inc("hits", 2.0, labels={"fn": "a"})
        reg.inc("hits", labels={"fn": "b"})
        assert reg.value("hits", {"fn": "a"}) == 3.0
        assert reg.value("hits") == 4.0

    def test_negative_counter_increment_rejected(self):
        with pytest.raises(MetricsError, match="only go up"):
            MetricsRegistry().inc("hits", -1.0)

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3.0)
        reg.set_gauge("depth", 1.5)
        assert reg.value("depth") == 1.5

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.inc("m")
        with pytest.raises(MetricsError, match="is a counter"):
            reg.set_gauge("m", 1.0)
        with pytest.raises(MetricsError, match="is a counter"):
            reg.observe("m", 1.0)

    def test_value_excludes_histograms(self):
        reg = MetricsRegistry()
        reg.observe("lat_ms", 10.0)
        assert reg.value("lat_ms") == 0.0

    def test_value_of_unknown_metric_is_zero(self):
        assert MetricsRegistry().value("ghost") == 0.0

    def test_histogram_addressed_by_exact_labels(self):
        reg = MetricsRegistry()
        reg.observe("lat_ms", 5.0, labels={"fn": "a"})
        assert reg.histogram("lat_ms", {"fn": "a"}).count == 1
        assert reg.histogram("lat_ms", {"fn": "b"}) is None
        assert reg.histogram("lat_ms") is None  # bare labels are distinct
        assert reg.histogram("ghost") is None

    def test_quantile_of_missing_histogram_is_zero(self):
        assert MetricsRegistry().quantile("ghost", 0.5) == 0.0

    def test_quantile_delegates(self):
        reg = MetricsRegistry()
        reg.observe("lat_ms", 7.0)
        assert reg.quantile("lat_ms", 1.0) == 7.0

    def test_families_and_kind_of(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        assert {f.name: f.kind for f in reg.families()} == {
            "c": "counter", "g": "gauge", "h": "histogram",
        }
        assert reg.kind_of("c") == "counter"
        assert reg.kind_of("ghost") is None


class TestBatchedObserve:
    def test_observe_many_equals_sequential_observes(self):
        """Vectorized bucketing must be bit-identical to one-at-a-time
        observes: same buckets, and the same *sequentially* accumulated
        sum (a pairwise numpy sum could differ in the last ulp)."""
        values = [0.001, 0.5, 1.0, 3.14159, 7.0, 1e-9, 1e9, 42.42,
                  0.0, -1.0, 2.0 ** -1070, 999.25] * 7
        sequential = Histogram()
        for value in values:
            sequential.observe(value)
        batched = Histogram()
        batched.observe_many(values)
        assert batched.buckets == sequential.buckets
        assert batched.count == sequential.count
        assert batched.total == sequential.total  # bit-identical
        assert batched.min_value == sequential.min_value
        assert batched.max_value == sequential.max_value

    def test_observe_many_empty_is_noop(self):
        histogram = Histogram()
        histogram.observe_many([])
        assert histogram.count == 0

    def test_observe_many_quantiles_agree(self):
        values = [float(i) for i in range(1, 500)]
        a, b = Histogram(), Histogram()
        a.observe_many(values)
        for value in values:
            b.observe(value)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert a.quantile(q) == b.quantile(q)


class TestHandles:
    def test_counter_handle_shares_series(self):
        registry = MetricsRegistry()
        handle = registry.counter("requests", {"fn": "markdown"})
        handle.inc()
        handle.inc(2.0)
        assert handle.value == 3.0
        assert registry.value("requests", {"fn": "markdown"}) == 3.0
        # the handle and the string path address the same series
        registry.inc("requests", 1.0, {"fn": "markdown"})
        assert handle.value == 4.0

    def test_counter_handle_rejects_negative(self):
        registry = MetricsRegistry()
        handle = registry.counter("n")
        with pytest.raises(MetricsError):
            handle.inc(-1.0)

    def test_gauge_handle_sets(self):
        registry = MetricsRegistry()
        handle = registry.gauge("depth", {"queue": "restore"})
        handle.set(7.0)
        handle.set(3.0)
        assert handle.value == 3.0
        assert registry.value("depth", {"queue": "restore"}) == 3.0

    def test_histogram_series_is_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.histogram_series("lat", {"fn": "a"})
        first.observe(5.0)
        again = registry.histogram_series("lat", {"fn": "a"})
        assert again is first
        assert registry.quantile("lat", 0.5, {"fn": "a"}) > 0.0

    def test_handle_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m").inc()
        with pytest.raises(MetricsError):
            registry.gauge("m")
        with pytest.raises(MetricsError):
            registry.histogram_series("m")
