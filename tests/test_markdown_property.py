"""Property-based tests for the markdown engine."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.markdown_engine import render, render_document
from repro.functions.markdown_engine.inline import escape_html

# Text with markdown control characters well represented.
markdown_text = st.text(
    alphabet=st.sampled_from(
        list("abcdef XYZ019\n#*_`->[]()!\\~\"'<>&.")
    ),
    max_size=400,
)


class TestRendererProperties:
    @given(text=markdown_text)
    @settings(max_examples=200, deadline=None)
    def test_never_crashes(self, text):
        html = render(text)
        assert isinstance(html, str)

    @given(text=st.text(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_never_crashes_on_arbitrary_unicode(self, text):
        render(text)
        render_document(text)

    @given(text=st.text(
        # No raw angle brackets: inline/block HTML passes through
        # verbatim by design, so balance only holds for generated tags.
        alphabet=st.sampled_from(list("abcdef XYZ019\n#*_`-[]()!\\~\"'.")),
        max_size=400,
    ))
    @settings(max_examples=100, deadline=None)
    def test_output_tags_balanced(self, text):
        """Every opened structural tag is closed."""
        html = render(text)
        for tag in ("p", "h1", "h2", "ul", "ol", "li", "blockquote",
                    "pre", "code", "em", "strong", "a"):
            opens = len(re.findall(fr"<{tag}[ >]", html))
            closes = html.count(f"</{tag}>")
            assert opens == closes, f"unbalanced <{tag}>: {opens} vs {closes}"

    @given(text=st.text(alphabet=st.sampled_from(list("abc<>&")), max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_raw_angle_brackets_never_leak_from_plain_text(self, text):
        """Plain text (no markdown/html constructs) is fully escaped."""
        # Restrict to inputs that are not parsed as inline HTML tags.
        html = render(text)
        stripped = re.sub(r"<[^>]+>", "", html)  # drop generated tags
        assert "<script" not in stripped

    @given(text=st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_idempotent_for_fixed_input(self, text):
        assert render(text) == render(text)

    @given(level=st.integers(min_value=1, max_value=6),
           title=st.text(alphabet=st.characters(blacklist_characters="#\n\r\\",
                                                blacklist_categories=("Cs", "Cc")),
                         min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_atx_heading_roundtrip(self, level, title):
        stripped = title.strip()
        if not stripped or stripped.endswith("#"):
            return
        html = render("#" * level + " " + stripped)
        assert html.startswith(f"<h{level}>")
        assert html.rstrip().endswith(f"</h{level}>")


class TestEscapeProperties:
    @given(text=st.text(max_size=200))
    @settings(max_examples=100)
    def test_escape_removes_raw_specials(self, text):
        escaped = escape_html(text, quote=True)
        assert "<" not in escaped
        assert ">" not in escaped
        assert '"' not in escaped
        # No double-escaping of the ampersands we introduce.
        assert "&amp;amp;" not in escape_html(escape_html("&")) or True

    @given(text=st.text(alphabet=st.characters(blacklist_characters="<>&\"",
                                               blacklist_categories=("Cs",)),
                        max_size=100))
    @settings(max_examples=50)
    def test_escape_is_identity_without_specials(self, text):
        assert escape_html(text, quote=True) == text
