"""Tests for the simulated VFS and page cache."""

import pytest

from repro.osproc.filesystem import FileSystem, FileSystemError, PageCache, VirtualFile


class TestFileSystem:
    def test_create_and_lookup(self):
        fs = FileSystem()
        fs.create("/a/b", size=100)
        assert fs.lookup("/a/b").size == 100

    def test_create_duplicate_rejected(self):
        fs = FileSystem()
        fs.create("/x")
        with pytest.raises(FileSystemError):
            fs.create("/x")

    def test_lookup_missing_rejected(self):
        with pytest.raises(FileSystemError, match="no such file"):
            FileSystem().lookup("/missing")

    def test_ensure_is_idempotent(self):
        fs = FileSystem()
        first = fs.ensure("/f", size=10)
        second = fs.ensure("/f", size=999)
        assert first is second
        assert second.size == 10  # existing file untouched

    def test_content_sets_size(self):
        fs = FileSystem()
        f = fs.create("/data", content=b"hello")
        assert f.size == 5

    def test_remove(self):
        fs = FileSystem()
        fs.create("/gone")
        fs.remove("/gone")
        assert not fs.exists("/gone")
        with pytest.raises(FileSystemError):
            fs.remove("/gone")

    def test_iter_paths_sorted(self):
        fs = FileSystem()
        for path in ("/c", "/a", "/b"):
            fs.create(path)
        assert list(fs.iter_paths()) == ["/a", "/b", "/c"]


class TestPageCache:
    def test_unknown_file_is_cold(self):
        cache = PageCache()
        assert cache.warmth(VirtualFile("/f", size=4096)) == 0.0

    def test_warm_full_file(self):
        cache = PageCache()
        f = VirtualFile("/f", size=10 * 4096)
        cache.warm(f)
        assert cache.warmth(f) == 1.0

    def test_warm_fraction(self):
        cache = PageCache()
        f = VirtualFile("/f", size=10 * 4096)
        cache.warm(f, fraction=0.5)
        assert cache.warmth(f) == pytest.approx(0.5)

    def test_warm_never_cools(self):
        cache = PageCache()
        f = VirtualFile("/f", size=10 * 4096)
        cache.warm(f, fraction=0.8)
        cache.warm(f, fraction=0.2)
        assert cache.warmth(f) == pytest.approx(0.8)

    def test_warm_fraction_clamped(self):
        cache = PageCache()
        f = VirtualFile("/f", size=4 * 4096)
        cache.warm(f, fraction=5.0)
        assert cache.warmth(f) == 1.0

    def test_evict(self):
        cache = PageCache()
        f = VirtualFile("/f", size=4096)
        cache.warm(f)
        cache.evict(f)
        assert cache.warmth(f) == 0.0

    def test_drop_all(self):
        cache = PageCache()
        files = [VirtualFile(f"/f{i}", size=4096) for i in range(3)]
        for f in files:
            cache.warm(f)
        cache.drop_all()
        assert all(cache.warmth(f) == 0.0 for f in files)

    def test_empty_file_has_one_page_slot(self):
        cache = PageCache()
        f = VirtualFile("/empty", size=0)
        cache.warm(f)
        assert cache.warmth(f) == 1.0
