"""Tests for the prebake-bench command-line interface."""

import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.repetitions == 200
        assert args.seed == 42

    def test_explicit_experiment(self):
        args = build_parser().parse_args(["fig3", "-r", "10", "-s", "7"])
        assert args.experiment == "fig3"
        assert args.repetitions == 10
        assert args.seed == 7


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_single_experiment(self, capsys):
        assert main(["fig5", "-r", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "synthetic-big" in out

    def test_run_sec5(self, capsys):
        assert main(["sec5"]) == 0
        assert "OpenFaaS" in capsys.readouterr().out

    def test_run_chaos_is_deterministic(self, capsys):
        assert main(["chaos", "-r", "10"]) == 0
        first = capsys.readouterr().out
        assert "Chaos recovery" in first
        assert "fault schedule digest" in first
        assert main(["chaos", "-r", "10"]) == 0
        assert capsys.readouterr().out == first

    def test_all_known_experiments_have_runners(self):
        for name, runner in EXPERIMENTS.items():
            assert callable(runner), name
