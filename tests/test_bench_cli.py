"""Tests for the prebake-bench command-line interface."""

import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.repetitions == 200
        assert args.seed == 42

    def test_explicit_experiment(self):
        args = build_parser().parse_args(["fig3", "-r", "10", "-s", "7"])
        assert args.experiment == "fig3"
        assert args.repetitions == 10
        assert args.seed == 7


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_single_experiment(self, capsys):
        assert main(["fig5", "-r", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "synthetic-big" in out

    def test_run_sec5(self, capsys):
        assert main(["sec5"]) == 0
        assert "OpenFaaS" in capsys.readouterr().out

    def test_run_chaos_is_deterministic(self, capsys):
        assert main(["chaos", "-r", "10"]) == 0
        first = capsys.readouterr().out
        assert "Chaos recovery" in first
        assert "fault schedule digest" in first
        assert main(["chaos", "-r", "10"]) == 0
        assert capsys.readouterr().out == first

    def test_run_prewarm_reports_the_policy_ladder(self, capsys):
        assert main(["prewarm", "-r", "1", "--requests", "8000"]) == 0
        out = capsys.readouterr().out
        assert "X13" in out
        for policy in ("reactive", "fixed", "histogram", "learned", "oracle"):
            assert policy in out
        assert "predictive beats fixed keep-alive:" in out
        assert "oracle bounds the gap:" in out

    def test_all_known_experiments_have_runners(self):
        for name, runner in EXPERIMENTS.items():
            assert callable(runner), name


class TestArgumentValidation:
    @pytest.mark.parametrize("argv,flag", [
        (["fig3", "-r", "0"], "--repetitions"),
        (["fig3", "-r", "-5"], "--repetitions"),
        (["fig3", "-s", "0"], "--seed"),
        (["fig3", "-s", "-1"], "--seed"),
        (["fig3", "-w", "0"], "--workers"),
        (["fig3", "-w", "-2"], "--workers"),
        (["fleet-study", "-r", "0"], "--repetitions"),
        (["fleet-study", "-s", "-1"], "--seed"),
        (["fleet-study", "-w", "0"], "--workers"),
        (["fleet-study", "--requests", "0"], "--requests"),
        (["fleet-study", "--requests", "-3"], "--requests"),
        (["prewarm", "-r", "0"], "--repetitions"),
        (["prewarm", "-r", "-2"], "--repetitions"),
        (["prewarm", "-s", "0"], "--seed"),
        (["prewarm", "-s", "-7"], "--seed"),
        (["prewarm", "--requests", "0"], "--requests"),
        (["prewarm", "--requests", "-1"], "--requests"),
        (["prewarm", "--horizon", "0"], "--horizon"),
        (["prewarm", "--horizon", "-4"], "--horizon"),
        (["prewarm", "--horizon", "1"], "--horizon"),
    ])
    def test_non_positive_knobs_exit_2_with_a_clear_message(
            self, capsys, argv, flag):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert flag in err
        assert "positive" in err

    def test_fleet_report_requires_an_artifact(self, capsys):
        assert main(["fleet-report"]) == 2
        assert "--fleet-in" in capsys.readouterr().err

    def test_validation_runs_before_the_experiment(self, capsys):
        # Even a bogus experiment name with a bad knob reports the
        # knob (exit 2 either way, but the message must be the knob's).
        assert main(["bogus", "-r", "0"]) == 2
        assert "--repetitions" in capsys.readouterr().err
