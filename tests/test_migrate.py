"""Tests for live migration via iterative checkpointing."""

import pytest

from repro.criu.migrate import MigrationError, Migrator, _merge_image_chain
from repro.osproc.process import ProcessState


@pytest.fixture
def migrator(kernel):
    return Migrator(kernel)


@pytest.fixture
def subject(kernel):
    proc = kernel.clone(kernel.init_process, comm="service")
    proc.address_space.grow_anon("heap", 8.0, content_tag="v0")
    return proc


def dirty_some_pages(proc, count=64, tag="dirty"):
    heap = proc.address_space.find_by_label("heap")
    for index in range(count):
        heap.touch(index, content_tag=tag)


class TestMigration:
    def test_zero_round_migration_is_stop_and_copy(self, migrator, subject):
        report = migrator.migrate(subject, pre_dump_rounds=0)
        assert report.pre_dump_images == []
        assert report.final_pages == 8 * 256  # the whole 8 MiB
        assert report.downtime_ms == pytest.approx(report.total_ms, rel=0.05)

    def test_donor_dead_survivor_alive(self, migrator, subject, kernel):
        report = migrator.migrate(subject, pre_dump_rounds=1)
        assert subject.state is ProcessState.DEAD
        survivor = kernel.get(report.restored_pid)
        assert survivor.alive
        assert survivor.comm == "service"

    def test_pre_dump_shrinks_final_dump(self, migrator, subject):
        report = migrator.migrate(
            subject, pre_dump_rounds=1,
            workload_between_rounds=lambda: dirty_some_pages(subject, 32),
        )
        assert report.pre_dump_pages == 8 * 256
        assert report.final_pages == 32  # only the re-dirtied pages

    def test_more_rounds_less_downtime(self, kernel):
        def fresh_subject():
            proc = kernel.clone(kernel.init_process, comm="svc")
            proc.address_space.grow_anon("heap", 16.0, content_tag="v0")
            return proc

        migrator = Migrator(kernel)
        cold = migrator.migrate(fresh_subject(), pre_dump_rounds=0)
        live_subject = fresh_subject()
        live = migrator.migrate(
            live_subject, pre_dump_rounds=2,
            workload_between_rounds=lambda: dirty_some_pages(live_subject, 16),
        )
        # The final dump shrinks to just the re-dirtied pages and the
        # pre-staged memory maps at in-memory cost, cutting downtime.
        assert live.downtime_ms < 0.75 * cold.downtime_ms
        assert live.final_pages < 0.01 * cold.final_pages

    def test_survivor_memory_is_union_of_rounds(self, migrator, subject, kernel):
        report = migrator.migrate(
            subject, pre_dump_rounds=1,
            workload_between_rounds=lambda: dirty_some_pages(subject, 10, "v1"),
        )
        survivor = kernel.get(report.restored_pid)
        heap = survivor.address_space.find_by_label("heap")
        assert heap.resident_pages == 8 * 256  # nothing lost
        # Last writer wins for re-dirtied pages.
        assert heap.pages[0].content_tag == "v1"
        assert heap.pages[100].content_tag == "v0"

    def test_negative_rounds_rejected(self, migrator, subject):
        with pytest.raises(MigrationError):
            migrator.migrate(subject, pre_dump_rounds=-1)

    def test_dead_target_rejected(self, migrator, subject, kernel):
        kernel.kill(subject.pid)
        with pytest.raises(MigrationError):
            migrator.migrate(subject)

    def test_merge_empty_chain_rejected(self):
        with pytest.raises(MigrationError):
            _merge_image_chain([])

    def test_migrated_replica_still_serves(self, kernel):
        """Migrate a live function replica; the survivor keeps serving."""
        from repro.core.starters import VanillaStarter
        from repro.functions import make_app
        from repro.runtime.base import Request
        handle = VanillaStarter(kernel).start(make_app("markdown"))
        handle.invoke(Request(body="# before"))
        migrator = Migrator(kernel)
        report = migrator.migrate(handle.process, pre_dump_rounds=1)
        survivor = kernel.get(report.restored_pid)
        runtime = survivor.payload["runtime"]
        assert runtime.ready
        response = runtime.handle(Request(body="# after"))
        assert "<h1>after</h1>" in response.body
        assert runtime.requests_served == 2  # state carried over
