"""Tests for the reproduction-report assembler."""

import pathlib

import pytest

from repro.bench.experiments_writer import (
    collect_sections,
    main,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig3_startup.txt").write_text("FIG3 TABLE\n")
    (directory / "zz_custom.txt").write_text("CUSTOM TABLE\n")
    (directory / "table1_intervals.txt").write_text("T1 TABLE\n")
    return directory


class TestCollect:
    def test_known_sections_ordered_first(self, results_dir):
        sections = collect_sections(results_dir)
        ids = [s.experiment_id for s in sections]
        assert ids == ["fig3_startup", "table1_intervals", "zz_custom"]

    def test_titles_resolved(self, results_dir):
        sections = collect_sections(results_dir)
        assert sections[0].title.startswith("Figure 3")
        assert sections[-1].title == "zz custom"

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_sections(tmp_path / "nope")


class TestWriteReport:
    def test_report_contains_all_bodies(self, results_dir):
        report = write_report(results_dir)
        assert "FIG3 TABLE" in report
        assert "CUSTOM TABLE" in report
        assert report.startswith("# Reproduction report")

    def test_writes_output_file(self, results_dir, tmp_path):
        out = tmp_path / "report.md"
        write_report(results_dir, out)
        assert "T1 TABLE" in out.read_text()

    def test_empty_dir_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError, match="no \\*.txt"):
            write_report(empty)


class TestCli:
    def test_prints_report(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "FIG3 TABLE" in capsys.readouterr().out

    def test_writes_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main([str(results_dir), str(out)]) == 0
        assert out.exists()

    def test_usage_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_missing_dir_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing")]) == 1
