"""Tests for the PrebakeManager facade."""

import pytest

from repro.core.manager import PrebakeManager
from repro.core.policy import AfterReady, AfterWarmup
from repro.core.starters import PrebakeStarter, VanillaStarter
from repro.functions import make_app


class TestDeploy:
    def test_deploy_bakes_and_versions(self, manager):
        report = manager.deploy(make_app("noop"))
        assert report.key.version == 1
        assert manager.current_version("noop") == 1

    def test_redeploy_bumps_version(self, manager):
        manager.deploy(make_app("noop"))
        report = manager.deploy(make_app("noop"))
        assert report.key.version == 2
        assert manager.current_version("noop") == 2

    def test_versions_tracked_per_function(self, manager):
        manager.deploy(make_app("noop"))
        manager.deploy(make_app("markdown"))
        assert manager.current_version("noop") == 1
        assert manager.current_version("markdown") == 1

    def test_unknown_version_query_rejected(self, manager):
        with pytest.raises(KeyError):
            manager.current_version("ghost")

    def test_sync_version_never_regresses(self, manager):
        manager.sync_version("fn", 3)
        manager.sync_version("fn", 1)
        assert manager.current_version("fn") == 3


class TestStarters:
    def test_vanilla_starter_type(self, manager):
        assert isinstance(manager.starter("vanilla"), VanillaStarter)

    def test_prebake_starter_type(self, manager):
        starter = manager.starter("prebake", policy=AfterWarmup(1), version=2)
        assert isinstance(starter, PrebakeStarter)
        assert starter.version == 2
        assert starter.policy == AfterWarmup(1)

    def test_unknown_technique_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.starter("magic")


class TestStartReplica:
    def test_start_replica_bakes_on_demand(self, manager):
        app = make_app("noop")
        handle = manager.start_replica(app, technique="prebake")
        assert handle.runtime.ready
        assert manager.current_version("noop") == 1

    def test_start_replica_reuses_snapshot(self, manager):
        app = make_app("noop")
        manager.start_replica(app, technique="prebake")
        key = manager.prebaker.store.keys()[0]
        before = manager.prebaker.store.restore_count(key)
        manager.start_replica(app, technique="prebake")
        assert manager.current_version("noop") == 1  # no re-bake
        assert manager.prebaker.store.restore_count(key) == before + 1

    def test_start_replica_vanilla(self, manager):
        handle = manager.start_replica(make_app("noop"), technique="vanilla")
        assert handle.technique == "vanilla"

    def test_start_replica_separate_policies_separate_snapshots(self, manager):
        app = make_app("markdown")
        manager.start_replica(app, technique="prebake", policy=AfterReady())
        manager.start_replica(app, technique="prebake", policy=AfterWarmup(1))
        policies = {key.policy for key in manager.prebaker.store.keys()}
        assert policies == {"after-ready", "after-warmup-1"}

    def test_restore_after_redeploy_uses_new_version(self, manager):
        app = make_app("noop")
        manager.deploy(app)
        manager.deploy(app)
        handle = manager.start_replica(app, technique="prebake")
        assert handle.runtime.ready
        versions = {key.version for key in manager.prebaker.store.keys()}
        assert 2 in versions
