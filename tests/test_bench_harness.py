"""Tests for the tracer, load generator, harness and report helpers."""

import pytest

from repro.bench.harness import run_service_experiment, run_startup_experiment
from repro.bench.report import format_interval, format_table, stacked_bar
from repro.bench.tracer import PhaseTracer, TraceError
from repro.bench.workload import LoadGenerator
from repro.core.manager import PrebakeManager
from repro.core.policy import AfterReady, AfterWarmup
from repro.core.starters import VanillaStarter
from repro.functions import make_app
from repro.osproc.probes import SyscallRecord
from repro.sim.costmodel import DEFAULT_COST_MODEL


def _emit(kernel, syscall, phase):
    kernel.probes.emit(SyscallRecord(
        syscall=syscall, pid=99, phase=phase, timestamp=kernel.clock.now))


class TestPhaseTracer:
    def test_vanilla_phase_breakdown(self, quiet_kernel):
        tracer = PhaseTracer(quiet_kernel)
        tracer.start_episode()
        VanillaStarter(quiet_kernel).start(make_app("noop"))
        tracer.stop_episode()
        phases = tracer.breakdown()
        m = DEFAULT_COST_MODEL
        assert phases.clone_ms == pytest.approx(m.clone_ms)
        assert phases.exec_ms == pytest.approx(m.exec_ms)
        assert phases.rts_ms == pytest.approx(m.jvm_rts_ms)
        assert phases.appinit_ms == pytest.approx(31.3, abs=0.5)

    def test_prebake_rts_is_zero(self, quiet_kernel):
        manager = PrebakeManager(quiet_kernel)
        app = make_app("noop")
        manager.deploy(app)
        tracer = PhaseTracer(quiet_kernel)
        tracer.start_episode()
        manager.start_replica(app, technique="prebake")
        tracer.stop_episode()
        phases = tracer.breakdown()
        assert phases.rts_ms == 0.0
        assert phases.appinit_ms == pytest.approx(60.0, abs=0.5)

    def test_empty_episode_rejected(self, kernel):
        tracer = PhaseTracer(kernel)
        tracer.start_episode()
        tracer.stop_episode()
        with pytest.raises(TraceError):
            tracer.breakdown()

    def test_events_outside_episode_ignored(self, kernel):
        tracer = PhaseTracer(kernel)
        VanillaStarter(kernel).start(make_app("noop"))  # not recording
        assert tracer.events == []

    def test_episode_without_ready_rejected(self, kernel):
        """clone+exec happened but the runtime never signalled ready
        (e.g. the restore path died before runtime.ready)."""
        tracer = PhaseTracer(kernel)
        tracer.start_episode()
        for syscall in ("clone", "execve"):
            _emit(kernel, syscall, "enter")
            kernel.clock.advance(1.0)
            _emit(kernel, syscall, "exit")
        tracer.stop_episode()
        with pytest.raises(TraceError, match="never reached runtime.ready"):
            tracer.breakdown()

    def test_episode_without_clone_exec_rejected(self, kernel):
        tracer = PhaseTracer(kernel)
        tracer.start_episode()
        _emit(kernel, "runtime.ready", "enter")
        tracer.stop_episode()
        with pytest.raises(TraceError, match="missing clone/exec"):
            tracer.breakdown()

    def test_partial_episode_does_not_poison_the_next(self, kernel):
        tracer = PhaseTracer(kernel)
        tracer.start_episode()
        _emit(kernel, "clone", "enter")  # truncated episode
        tracer.stop_episode()
        with pytest.raises(TraceError):
            tracer.breakdown()
        # a fresh episode on the same tracer records cleanly
        tracer.start_episode()
        VanillaStarter(kernel).start(make_app("noop"))
        tracer.stop_episode()
        phases = tracer.breakdown()
        assert phases.total_ms > 0.0
        assert not any(e.pid == 99 for e in tracer.events)

    def test_breakdown_total(self, quiet_kernel):
        tracer = PhaseTracer(quiet_kernel)
        tracer.start_episode()
        handle = VanillaStarter(quiet_kernel).start(make_app("noop"))
        tracer.stop_episode()
        phases = tracer.breakdown()
        assert phases.total_ms == pytest.approx(handle.startup_ms("ready"), rel=0.01)


class TestLoadGenerator:
    def test_holds_first_request_until_ready(self, kernel):
        generator = LoadGenerator(kernel)
        result = generator.run(VanillaStarter(kernel), make_app("noop"),
                               requests=5, interval_ms=10.0)
        first = result.responses[0]
        assert first.started_ms >= result.handle.ready_at_ms

    def test_constant_rate_spacing(self, kernel):
        generator = LoadGenerator(kernel)
        result = generator.run(VanillaStarter(kernel), make_app("noop"),
                               requests=3, interval_ms=50.0)
        gaps = [
            result.responses[i + 1].started_ms - result.responses[i].finished_ms
            for i in range(2)
        ]
        assert all(g == pytest.approx(50.0) for g in gaps)

    def test_collects_all_service_times(self, kernel):
        result = LoadGenerator(kernel).run(
            VanillaStarter(kernel), make_app("markdown"), requests=20)
        assert len(result.service_times) == 20
        assert result.errors == 0

    def test_zero_requests_allowed(self, kernel):
        result = LoadGenerator(kernel).run(
            VanillaStarter(kernel), make_app("noop"), requests=0)
        assert result.responses == []

    def test_negative_requests_rejected(self, kernel):
        with pytest.raises(ValueError):
            LoadGenerator(kernel).run(VanillaStarter(kernel),
                                      make_app("noop"), requests=-1)


class TestStartupExperiment:
    def test_sample_count(self):
        summary = run_startup_experiment("noop", "vanilla", repetitions=10, seed=1)
        assert len(summary.samples) == 10
        assert summary.metric == "ready"

    def test_deterministic_per_seed(self):
        a = run_startup_experiment("noop", "vanilla", repetitions=5, seed=9)
        b = run_startup_experiment("noop", "vanilla", repetitions=5, seed=9)
        assert a.values == b.values

    def test_different_seeds_differ(self):
        a = run_startup_experiment("noop", "vanilla", repetitions=5, seed=1)
        b = run_startup_experiment("noop", "vanilla", repetitions=5, seed=2)
        assert a.values != b.values

    def test_repetitions_vary_within_run(self):
        summary = run_startup_experiment("noop", "vanilla", repetitions=10, seed=1)
        assert len(set(summary.values)) > 1

    def test_synthetic_uses_first_response(self):
        summary = run_startup_experiment("synthetic-small", "vanilla",
                                         repetitions=3, seed=1)
        assert summary.metric == "first_response"

    def test_prebake_records_snapshot_size(self):
        summary = run_startup_experiment("noop", "prebake", repetitions=3, seed=1)
        assert all(s.snapshot_mib > 10 for s in summary.samples)

    def test_phase_tracing(self):
        summary = run_startup_experiment("noop", "vanilla", repetitions=3,
                                         seed=1, trace_phases=True)
        phases = summary.phase_medians()
        assert phases.rts_ms == pytest.approx(70.0, rel=0.05)

    def test_phase_medians_without_tracing_rejected(self):
        summary = run_startup_experiment("noop", "vanilla", repetitions=3, seed=1)
        with pytest.raises(ValueError):
            summary.phase_medians()

    def test_warm_policy_faster_than_nowarm(self):
        nowarm = run_startup_experiment("synthetic-small", "prebake",
                                        policy=AfterReady(),
                                        repetitions=5, seed=1)
        warm = run_startup_experiment("synthetic-small", "prebake",
                                      policy=AfterWarmup(1),
                                      repetitions=5, seed=1)
        assert warm.median_ms < 0.5 * nowarm.median_ms


class TestServiceExperiment:
    def test_service_samples_collected(self):
        summary = run_service_experiment("noop", "vanilla", requests=30, seed=1)
        assert len(summary.service_times_ms) == 30
        assert summary.errors == 0

    def test_techniques_have_similar_service_time(self):
        vanilla = run_service_experiment("markdown", "vanilla", requests=50, seed=2)
        prebake = run_service_experiment("markdown", "prebake", requests=50, seed=2)
        ratio = prebake.median_ms / vanilla.median_ms
        assert 0.9 < ratio < 1.1


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_interval(self):
        assert format_interval(219.25, 220.32) == "(219.25;220.32)"

    def test_stacked_bar_proportions(self):
        bar = stacked_bar({"CLONE": 0, "EXEC": 0, "RTS": 50, "APPINIT": 50},
                          total_width=10)
        assert bar.count("R") == 5
        assert bar.count("A") == 5

    def test_stacked_bar_empty(self):
        assert stacked_bar({"RTS": 0.0}) == "(empty)"
