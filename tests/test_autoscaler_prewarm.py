"""Autoscaler prewarm integration: events ring, waste accounting,
forecast-driven pre-placement, and chunk prefetch."""

import pytest

from repro import make_world
from repro.faas.autoscaler import AutoscalerConfig
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.functions.base import make_app
from repro.predict.policy import PrewarmConfig


def _platform(kernel, **kwargs) -> FaaSPlatform:
    return FaaSPlatform(kernel, PlatformConfig(**kwargs))


class TestEventRing:
    def test_events_ring_is_bounded_and_counts_drops(self):
        world = make_world(seed=3, observe=True)
        platform = _platform(
            world.kernel, autoscaler=AutoscalerConfig(event_capacity=8))
        platform.register_function(lambda: make_app("markdown"))
        scaler = platform.autoscaler
        # Far more scale events than the ring holds.
        for i in range(2, 14):
            platform.scale("markdown", i % 4 + 1)
            for replica in platform.deployer.replicas("markdown"):
                replica.terminate()
        assert len(scaler.events) <= 8
        assert scaler.events_dropped > 0
        # The ring keeps the *newest* events.
        assert scaler.events[-1].at_ms >= scaler.events[0].at_ms

    def test_dropped_counter_starts_at_zero(self):
        world = make_world(seed=4, observe=True)
        platform = _platform(world.kernel)
        assert platform.autoscaler.events_dropped == 0


class TestWasteAccounting:
    def test_idle_gc_accrues_wasted_warm_ms(self):
        world = make_world(seed=5, observe=True)
        platform = _platform(world.kernel)
        platform.register_function(lambda: make_app("markdown"),
                                   idle_timeout_ms=1_000.0)
        platform.invoke("markdown")
        world.kernel.clock.advance(5_000.0)
        platform.gc_tick()
        scaler = platform.autoscaler
        assert platform.replica_count("markdown") == 0
        assert scaler.wasted_warm_ms.get("markdown", 0.0) >= 5_000.0
        gc_events = [e for e in scaler.events if e.action == "gc"]
        assert gc_events

    def test_no_waste_accrued_while_replicas_stay_busy(self):
        world = make_world(seed=6, observe=True)
        platform = _platform(world.kernel)
        platform.register_function(lambda: make_app("markdown"),
                                   idle_timeout_ms=60_000.0)
        platform.invoke("markdown")
        platform.gc_tick()
        assert platform.autoscaler.wasted_warm_ms.get("markdown", 0.0) == 0.0


class TestPrewarmPass:
    def _warm_platform(self, seed=7):
        world = make_world(seed=seed, observe=True)
        platform = _platform(world.kernel, prewarm=PrewarmConfig(
            policy="learned", window_ms=200.0, service_ms_hint=500.0))
        platform.register_function(lambda: make_app("markdown"),
                                   start_technique="prebake",
                                   cache_policy="freq-over-size")
        for _ in range(60):
            platform.invoke("markdown")
            world.kernel.clock.advance(40.0)
            platform.gc_tick()
        return world, platform

    def test_default_platform_has_no_prewarm_layer(self):
        world = make_world(seed=8, observe=True)
        platform = _platform(world.kernel)
        assert platform.prewarm is None
        platform.register_function(lambda: make_app("markdown"))
        platform.invoke("markdown")      # note_arrival must be a no-op
        platform.gc_tick()

    def test_forecast_drives_prewarm_provisioning(self):
        _, platform = self._warm_platform()
        stats = platform.prewarm.stats
        assert stats.plans > 0
        assert stats.windows_fed > 0
        assert stats.prewarm_replicas > 0
        prewarm_events = [e for e in platform.autoscaler.events
                          if e.action == "prewarm"]
        assert len(prewarm_events) > 0
        # Pre-placed capacity is real, live replicas.
        assert platform.replica_count("markdown") > 1

    def test_prewarm_respects_max_replica_limits(self):
        world = make_world(seed=9, observe=True)
        platform = _platform(
            world.kernel,
            autoscaler=AutoscalerConfig(max_replicas=2),
            prewarm=PrewarmConfig(policy="histogram", window_ms=200.0,
                                  service_ms_hint=500.0,
                                  max_warm_per_function=8))
        platform.register_function(lambda: make_app("markdown"))
        for _ in range(60):
            platform.invoke("markdown")
            world.kernel.clock.advance(40.0)
            platform.gc_tick()
        assert platform.replica_count("markdown") <= 2

    def test_prewarm_plans_request_prefetch(self):
        _, platform = self._warm_platform(seed=10)
        assert platform.prewarm.stats.prefetch_requests > 0

    def test_prefetch_warms_the_node_cache_before_first_restore(self):
        world = make_world(seed=13, observe=True)
        platform = _platform(world.kernel)
        platform.register_function(lambda: make_app("markdown"),
                                   start_technique="prebake",
                                   cache_policy="freq-over-size")
        # No replica has restored yet, so the node cache is cold and
        # the predicted working set actually gets admitted.
        admitted = platform.deployer.prefetch_function("markdown")
        assert admitted > 0
        caches = platform.deployer._node_chunk_cache
        assert any(cache.stats.prefetches > 0 for cache in caches.values())
        # Prefetch is idempotent: a second pass finds everything
        # resident and admits nothing new.
        assert platform.deployer.prefetch_function("markdown") == 0

    def test_prefetch_function_is_a_noop_for_vanilla(self):
        world = make_world(seed=11, observe=True)
        platform = _platform(world.kernel)
        platform.register_function(lambda: make_app("markdown"),
                                   start_technique="vanilla")
        assert platform.deployer.prefetch_function("markdown") == 0


class TestKeepAliveOverride:
    def test_policy_keepalive_replaces_fixed_timeout(self):
        world = make_world(seed=12, observe=True)
        platform = _platform(world.kernel, prewarm=PrewarmConfig(
            policy="histogram", window_ms=200.0,
            keepalive_floor_ms=100.0, keepalive_cap_ms=500.0))
        platform.register_function(lambda: make_app("markdown"),
                                   idle_timeout_ms=60_000.0)
        # Long, regular gaps: the histogram's scale-to-zero fast path
        # collapses keep-alive to the floor, far below the fixed
        # timeout, so the idle replica is GC'd almost immediately.
        for _ in range(12):
            platform.invoke("markdown")
            world.kernel.clock.advance(2_000.0)
        platform.gc_tick()
        assert platform.replica_count("markdown") == 0
        assert platform.autoscaler.wasted_warm_ms.get("markdown", 0.0) > 0.0
