"""Tests for the HTTP/1.1 codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    compose_request,
    compose_response,
    from_runtime_response,
    parse_request,
    parse_response,
    to_runtime_request,
)


class TestComposeRequest:
    def test_basic_post(self):
        wire = compose_request(HttpRequest("POST", "/fn", body=b"hello"))
        assert wire.startswith(b"POST /fn HTTP/1.1\r\n")
        assert b"Content-Length: 5\r\n" in wire
        assert wire.endswith(b"\r\n\r\nhello")

    def test_explicit_content_length_respected(self):
        wire = compose_request(HttpRequest(
            "POST", "/", headers={"Content-Length": "3"}, body=b"abc"))
        assert wire.count(b"Content-Length") == 1

    def test_unsupported_method_rejected(self):
        with pytest.raises(HttpError):
            compose_request(HttpRequest("BREW", "/"))

    def test_bad_path_rejected(self):
        with pytest.raises(HttpError):
            compose_request(HttpRequest("GET", "no-slash"))

    def test_header_injection_rejected(self):
        with pytest.raises(HttpError, match="line breaks"):
            compose_request(HttpRequest(
                "GET", "/", headers={"X-Evil": "a\r\nInjected: yes"}))


class TestParseRequest:
    def test_roundtrip(self):
        original = HttpRequest("POST", "/render",
                               headers={"X-Trace": "abc"}, body=b"# md")
        parsed = parse_request(compose_request(original))
        assert parsed.method == "POST"
        assert parsed.path == "/render"
        assert parsed.header("x-trace") == "abc"
        assert parsed.body == b"# md"

    def test_get_without_body(self):
        parsed = parse_request(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n")
        assert parsed.method == "GET"
        assert parsed.body == b""

    def test_header_names_case_insensitive(self):
        parsed = parse_request(
            b"GET / HTTP/1.1\r\nCoNtEnT-tYpE: text/plain\r\n\r\n")
        assert parsed.header("Content-Type") == "text/plain"

    def test_chunked_body(self):
        wire = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n")
        assert parse_request(wire).body == b"Wikipedia"

    @pytest.mark.parametrize("wire,match", [
        (b"GETT / HTTP/1.1\r\n\r\n", "unsupported method"),
        (b"GET /\r\n\r\n", "malformed request line"),
        (b"GET / HTTP/2\r\n\r\n", "unsupported version"),
        (b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n", "malformed header"),
        (b"GET / HTTP/1.1", "no header terminator"),
        (b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n", "bad Content-Length"),
        (b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", "negative"),
        (b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", "truncated body"),
        (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n", "bad chunk size"),
        (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab", "truncated chunk"),
    ])
    def test_malformed_rejected(self, wire, match):
        with pytest.raises(HttpError, match=match):
            parse_request(wire)

    def test_body_beyond_content_length_ignored(self):
        parsed = parse_request(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nabEXTRA")
        assert parsed.body == b"ab"


class TestResponses:
    def test_compose_parse_roundtrip(self):
        original = HttpResponse(200, headers={"X-A": "1"}, body=b"payload")
        parsed = parse_response(compose_response(original))
        assert parsed.status == 200
        assert parsed.body == b"payload"
        assert parsed.header("x-a") == "1"

    def test_reason_phrases(self):
        assert HttpResponse(404).reason == "Not Found"
        assert HttpResponse(299).reason == "Unknown"

    def test_status_out_of_range(self):
        with pytest.raises(HttpError, match="out of range"):
            parse_response(b"HTTP/1.1 999 Nope\r\n\r\n")

    def test_bad_status_code(self):
        with pytest.raises(HttpError, match="bad status"):
            parse_response(b"HTTP/1.1 abc Nope\r\n\r\n")


class TestBridges:
    def test_to_runtime_request(self):
        http = HttpRequest("POST", "/render", body=b"# hi")
        request = to_runtime_request(http)
        assert request.body == "# hi"
        assert request.path == "/render"
        assert request.method == "POST"

    def test_from_runtime_response_string(self):
        from repro.runtime.base import Response
        response = Response(status=200, body="<h1>x</h1>", request_id=7,
                            started_ms=1.0, finished_ms=3.5)
        http = from_runtime_response(response)
        assert http.status == 200
        assert http.body == b"<h1>x</h1>"
        assert http.header("x-request-id") == "7"

    def test_from_runtime_response_json(self):
        from repro.runtime.base import Response
        response = Response(status=200, body={"width": 34},
                            started_ms=0, finished_ms=1)
        http = from_runtime_response(response)
        assert b'"width": 34' in http.body or b'"width":34' in http.body

    def test_end_to_end_over_wire(self, kernel):
        """HTTP bytes → simulated replica → HTTP bytes."""
        from repro.core.starters import VanillaStarter
        from repro.functions import make_app
        handle = VanillaStarter(kernel).start(make_app("markdown"))
        wire_in = compose_request(HttpRequest("POST", "/", body=b"**bold**"))
        request = to_runtime_request(parse_request(wire_in))
        response = handle.invoke(request)
        wire_out = compose_response(from_runtime_response(response))
        parsed = parse_response(wire_out)
        assert parsed.status == 200
        assert b"<strong>bold</strong>" in parsed.body


class TestCodecProperties:
    @given(body=st.binary(max_size=500),
           path=st.text(alphabet=st.sampled_from(list(
               "abcdefghijklmnopqrstuvwxyz0123456789/-_.")), min_size=0, max_size=40))
    @settings(max_examples=100)
    def test_request_roundtrip_property(self, body, path):
        original = HttpRequest("POST", "/" + path, body=body)
        parsed = parse_request(compose_request(original))
        assert parsed.body == body
        assert parsed.path == "/" + path

    @given(status=st.sampled_from([200, 201, 204, 400, 404, 500, 503]),
           body=st.binary(max_size=300))
    @settings(max_examples=100)
    def test_response_roundtrip_property(self, status, body):
        parsed = parse_response(compose_response(HttpResponse(status, body=body)))
        assert parsed.status == status
        assert parsed.body == body
