"""Online anomaly detection: detector math, windows, and wiring.

The detectors are deterministic, numpy-only online estimators; the
tests pin the statistical contract (warmup, robustness to a single
outlier, baseline protection) and the plumbing contract (metric
helpers feed the monitor, emissions land on the flight tape and the
``anomaly_events_total`` counter without re-entering the monitor, and
PrometheusLite turns events into alerts).
"""

import pytest

from repro import make_world, obs
from repro.obs.anomaly import (
    ABOVE,
    AnomalyEvent,
    BELOW,
    COLD_START_LATENCY,
    EwmaMadDetector,
    RESTORE_FAILURE_RATE,
    AnomalyMonitor,
    default_monitor,
)


class TestEwmaMadDetector:
    def test_warmup_samples_never_flag(self):
        detector = EwmaMadDetector("d", warmup=8)
        for _ in range(8):
            assert detector.update(50.0) is None
        # Warmed up now: a 10x spike flags.
        assert detector.update(500.0) is not None

    def test_spike_flags_and_does_not_poison_baseline(self):
        detector = EwmaMadDetector("d", warmup=4, rel_floor=0.02)
        for value in [50.0, 51.0, 49.0, 50.0, 50.5]:
            assert detector.update(value) is None
        baseline_before = detector.ewma
        hit = detector.update(500.0)
        assert hit is not None
        assert hit["score"] > detector.z_threshold
        assert hit["baseline"] == pytest.approx(baseline_before)
        # The anomalous sample was rejected from the estimate, so the
        # very next normal sample does not flag.
        assert detector.ewma == pytest.approx(baseline_before)
        assert detector.update(50.0) is None

    def test_direction_below(self):
        detector = EwmaMadDetector("d", warmup=4, direction=BELOW)
        for value in [50.0, 51.0, 49.0, 50.0]:
            detector.update(value)
        assert detector.update(500.0) is None   # above: ignored
        assert detector.update(1.0) is not None  # below: flagged

    def test_min_delta_suppresses_float_dust(self):
        # All-zero baseline -> MAD 0, rel_floor*0 = 0; without
        # min_delta a 1e-12 'rate' would score astronomically.
        detector = EwmaMadDetector("d", warmup=3, min_delta=0.05)
        for _ in range(4):
            detector.update(0.0)
        assert detector.update(1e-12) is None
        assert detector.update(1.0) is not None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EwmaMadDetector("d", alpha=0.0)
        with pytest.raises(ValueError):
            EwmaMadDetector("d", warmup=0)
        with pytest.raises(ValueError):
            EwmaMadDetector("d", direction="sideways")


class TestAnomalyMonitorWindows:
    def _warmed_rate_monitor(self, window_ms=100.0, warmup=3):
        monitor = AnomalyMonitor(window_ms=window_ms)
        monitor.watch_rate(
            "fail-rate", bad_metric="fails_total",
            total_metric="ok_total",
            detector=EwmaMadDetector("fail-rate", warmup=warmup,
                                     direction=ABOVE, min_delta=0.05),
            additive_total=True,
        )
        # Clean traffic across `warmup` + 1 windows.
        for window in range(warmup + 1):
            monitor.offer_count("ok_total", window * window_ms + 10.0, 4.0)
        return monitor

    def test_rate_spike_flagged_with_window_bounds(self):
        monitor = self._warmed_rate_monitor()
        hits = []
        monitor.subscribe(hits.append)
        # All-failures window at [400, 500): additive_total keeps the
        # denominator alive even though ok_total saw nothing.
        monitor.offer_count("fails_total", 410.0, 4.0)
        monitor.flush(510.0)
        (event,) = hits
        assert event.detector == "fail-rate"
        assert event.value == 1.0
        assert (event.window_start_ms, event.window_end_ms) == (400.0, 500.0)
        assert monitor.events == [event]

    def test_empty_windows_say_nothing(self):
        monitor = self._warmed_rate_monitor()
        # ~46 idle windows pass before the next traffic; idle windows
        # produce no rate samples, so the detector sees exactly the 5
        # windows that had traffic (4 warmup + the final one).
        monitor.offer_count("ok_total", 5_000.0, 4.0)
        monitor.flush(5_100.0)
        assert monitor.events == []
        assert monitor._rate_watches[0].detector.accepted == 5

    def test_event_round_trip(self):
        event = AnomalyEvent(at_ms=500.0, detector="d", metric="m",
                             value=1.0, baseline=0.0, score=9.9,
                             threshold=6.0, direction=ABOVE,
                             window_start_ms=400.0, window_end_ms=500.0,
                             trace_id="t-0001")
        clone = AnomalyEvent.from_dict(event.as_dict())
        assert clone.as_dict() == event.as_dict()


class TestHelperWiring:
    def test_observe_feeds_watch_and_stamps_flight_and_counter(self):
        kernel = make_world(seed=6, observe=True).kernel
        obs.install_flight(kernel)
        monitor = obs.enable_anomaly(kernel, window_ms=100.0,
                                     latency_warmup=3)
        for _ in range(4):
            obs.observe(kernel, "router_cold_start_wait_ms", 50.0)
        obs.observe(kernel, "router_cold_start_wait_ms", 500.0)
        (event,) = monitor.events
        assert event.detector == COLD_START_LATENCY
        # The emission reached the tape and the registry directly.
        (tape,) = kernel.flight.events(kind="anomaly.detected")
        assert tape.attrs["detector"] == COLD_START_LATENCY
        assert kernel.obs.metrics.value(
            "anomaly_events_total",
            labels={"detector": COLD_START_LATENCY}) == 1.0

    def test_observe_exemplar_becomes_trace_id(self):
        kernel = make_world(seed=6, observe=True).kernel
        monitor = obs.enable_anomaly(kernel, window_ms=100.0,
                                     latency_warmup=3)
        for _ in range(4):
            obs.observe(kernel, "router_cold_start_wait_ms", 50.0)
        with obs.span(kernel, "router.route") as span:
            obs.observe(kernel, "router_cold_start_wait_ms", 500.0)
        (event,) = monitor.events
        assert event.trace_id == span.trace_id

    def test_default_monitor_watches_the_slo_surface(self):
        monitor = default_monitor()
        assert "router_cold_start_wait_ms" in monitor._sample_watches
        names = {watch.name for watch in monitor._rate_watches}
        assert RESTORE_FAILURE_RATE in names
        restore = next(w for w in monitor._rate_watches
                       if w.name == RESTORE_FAILURE_RATE)
        # criu_restore_total counts only successes; without the
        # additive denominator a 100%-failure window would divide by 0.
        assert restore.additive_total

    def test_default_monitor_watches_placement_locality(self):
        from repro.obs.anomaly import LOCALITY_MISS_RATE

        monitor = default_monitor()
        watch = next(w for w in monitor._rate_watches
                     if w.name == LOCALITY_MISS_RATE)
        assert watch.bad_metric == "deployer_locality_miss_total"
        assert watch.total_metric == "deployer_cold_placement_total"

    def test_prometheus_attach_fires_synthetic_alerts(self):
        from repro.faas.openfaas.prometheus import PrometheusLite

        monitor = AnomalyMonitor(window_ms=100.0)
        monitor.watch_samples(
            "router_cold_start_wait_ms",
            EwmaMadDetector(COLD_START_LATENCY, warmup=3))
        prometheus = PrometheusLite()
        prometheus.attach_anomaly_monitor(monitor)
        delivered = []
        prometheus.subscribe(delivered.append)
        for _ in range(4):
            monitor.offer("router_cold_start_wait_ms", 10.0, 50.0)
        monitor.offer("router_cold_start_wait_ms", 20.0, 500.0)
        (alert,) = prometheus.fired
        assert alert.rule.name == f"anomaly:{COLD_START_LATENCY}"
        assert delivered == [alert]
