"""Tests for the P² quantile digest and trace-file handling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.digest import LatencyDigest, P2Quantile
from repro.bench.stats import quantile as exact_quantile
from repro.bench.traces import (
    TraceEvent,
    TraceFormatError,
    dump_csv,
    dump_jsonl,
    load_csv,
    load_jsonl,
    per_function_counts,
    synthesize_workload,
)


class TestP2Quantile:
    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).observe(float("nan"))

    def test_empty_is_zero(self):
        assert P2Quantile(0.5).value == 0.0

    def test_small_samples_exactish(self):
        estimator = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            estimator.observe(value)
        assert estimator.value == 3.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_accuracy_on_normal(self, q):
        rng = random.Random(1)
        data = [rng.gauss(100.0, 15.0) for _ in range(5000)]
        estimator = P2Quantile(q)
        for value in data:
            estimator.observe(value)
        exact = exact_quantile(data, q)
        assert estimator.value == pytest.approx(exact, rel=0.03)

    @pytest.mark.parametrize("q", [0.5, 0.9])
    def test_accuracy_on_lognormal(self, q):
        rng = random.Random(2)
        data = [rng.lognormvariate(3.0, 0.5) for _ in range(5000)]
        estimator = P2Quantile(q)
        for value in data:
            estimator.observe(value)
        exact = exact_quantile(data, q)
        assert estimator.value == pytest.approx(exact, rel=0.05)

    def test_constant_stream(self):
        estimator = P2Quantile(0.9)
        for _ in range(100):
            estimator.observe(7.0)
        assert estimator.value == 7.0

    @given(data=st.lists(st.floats(min_value=0.0, max_value=1e4),
                         min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_estimate_within_observed_range(self, data):
        estimator = P2Quantile(0.9)
        for value in data:
            estimator.observe(value)
        assert min(data) <= estimator.value <= max(data)


class TestLatencyDigest:
    def test_summary_fields(self):
        digest = LatencyDigest()
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            digest.observe(value)
        summary = digest.summary()
        assert summary["count"] == 6
        assert summary["mean"] == pytest.approx(3.5)
        assert summary["min"] == 1.0 and summary["max"] == 6.0
        assert "p50" in summary and "p99" in summary

    def test_untracked_quantile_rejected(self):
        with pytest.raises(KeyError):
            LatencyDigest().quantile(0.75)

    def test_empty_quantiles_rejected(self):
        with pytest.raises(ValueError):
            LatencyDigest(quantiles=())

    def test_empty_digest_mean(self):
        assert LatencyDigest().mean == 0.0


class TestTraceFiles:
    EVENTS = [TraceEvent(10.0, "a"), TraceEvent(5.0, "b"), TraceEvent(20.0, "a")]

    def test_jsonl_roundtrip(self):
        loaded = load_jsonl(dump_jsonl(self.EVENTS))
        assert loaded == sorted(self.EVENTS, key=lambda e: (e.at_ms, e.function))

    def test_csv_roundtrip(self):
        loaded = load_csv(dump_csv(self.EVENTS))
        assert [e.function for e in loaded] == ["b", "a", "a"]

    def test_jsonl_skips_blank_lines(self):
        text = dump_jsonl(self.EVENTS) + "\n\n"
        assert len(load_jsonl(text)) == 3

    def test_jsonl_bad_line_reports_lineno(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            load_jsonl('{"at_ms": 1, "function": "a"}\nnot-json\n')

    def test_csv_bad_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            load_csv("time,fn\n1,a\n")

    def test_csv_empty(self):
        with pytest.raises(TraceFormatError, match="empty"):
            load_csv("")

    def test_event_validation(self):
        with pytest.raises(TraceFormatError):
            TraceEvent(-1.0, "a")
        with pytest.raises(TraceFormatError):
            TraceEvent(1.0, "")

    @given(events=st.lists(
        st.builds(TraceEvent,
                  at_ms=st.floats(min_value=0, max_value=1e6),
                  function=st.sampled_from(["f1", "f2", "f3"])),
        max_size=50))
    @settings(max_examples=50)
    def test_roundtrip_property(self, events):
        via_jsonl = load_jsonl(dump_jsonl(events))
        via_csv = load_csv(dump_csv(events))
        assert len(via_jsonl) == len(events)
        # CSV stores 3 decimal places, which can reorder near-equal
        # timestamps — compare the event multiset, not the order.
        assert sorted(e.function for e in via_csv) == \
            sorted(e.function for e in via_jsonl)
        for a, b in zip(via_csv, sorted(via_csv, key=lambda e: e.at_ms)):
            assert a.at_ms == b.at_ms


class TestSynthesizer:
    def test_zipf_popularity(self):
        functions = [f"fn-{i}" for i in range(10)]
        trace = synthesize_workload(functions, duration_ms=600_000,
                                    total_rate_per_s=20, bursty_fraction=0.0,
                                    seed=5)
        counts = per_function_counts(trace)
        assert counts["fn-0"] > 3 * counts.get("fn-9", 1)

    def test_sorted_output(self):
        trace = synthesize_workload(["a", "b"], duration_ms=60_000, seed=1)
        times = [e.at_ms for e in trace]
        assert times == sorted(times)

    def test_deterministic(self):
        a = synthesize_workload(["a", "b"], 60_000, seed=2)
        b = synthesize_workload(["a", "b"], 60_000, seed=2)
        assert a == b

    def test_validation(self):
        with pytest.raises(TraceFormatError):
            synthesize_workload([], 1000)
        with pytest.raises(TraceFormatError):
            synthesize_workload(["a"], 1000, bursty_fraction=2.0)

    def test_total_volume_reasonable(self):
        trace = synthesize_workload([f"f{i}" for i in range(5)],
                                    duration_ms=300_000,
                                    total_rate_per_s=10,
                                    bursty_fraction=0.0, seed=3)
        assert len(trace) == pytest.approx(3000, rel=0.25)
