"""Cross-node trace stitching: one cold start, one multi-node tree.

The fleet-plane acceptance criterion: a single cold start whose
restore pulls chunks from remote storage nodes must produce ONE
connected span tree carrying node identities from at least two nodes
— the compute node that provisioned the replica plus the storage
nodes that served the quorum fetches.
"""

from repro import make_world
from repro.bench.fleet_study import stitched_trace_nodes
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.functions import make_app


def sharded_platform(seed=11, storage_nodes=4):
    world = make_world(seed=seed, observe=True)
    platform = FaaSPlatform(world.kernel, PlatformConfig(
        nodes=2, storage_nodes=storage_nodes, replication_factor=2))
    return world.kernel, platform


def cold_start_spans(kernel, platform, function="markdown"):
    platform.register_function(lambda: make_app(function),
                               start_technique="prebake")
    platform.invoke(function)
    return [span.as_dict() for span in kernel.obs.tracer.spans]


class TestCrossNodeStitching:
    def test_cold_start_stitches_at_least_two_node_identities(self):
        kernel, platform = sharded_platform()
        spans = cold_start_spans(kernel, platform)
        nodes = stitched_trace_nodes(spans)
        assert len(nodes) >= 2, f"stitched only {nodes}"
        # Both sides of the fleet appear: a compute placement and at
        # least one storage node that served a remote chunk.
        assert any(node.startswith("node-") for node in nodes)
        assert any(node.startswith("store-") for node in nodes)

    def test_remote_fetches_are_child_spans_of_the_restore_pass(self):
        kernel, platform = sharded_platform()
        spans = cold_start_spans(kernel, platform)
        passes = [s for s in spans if s["name"] == "shard.restore-pass"]
        fetches = [s for s in spans if s["name"] == "shard.fetch"]
        assert passes and fetches
        pass_ids = {s["span"] for s in passes}
        assert all(f["parent"] in pass_ids for f in fetches)
        # Every fetch names the storage node that served it, plus its
        # retry-hop count.
        for fetch in fetches:
            assert str(fetch["attrs"]["node_id"]).startswith("store-")
            assert fetch["attrs"]["hop"] >= 0

    def test_provision_span_names_the_compute_node(self):
        kernel, platform = sharded_platform()
        spans = cold_start_spans(kernel, platform)
        provisions = [s for s in spans
                      if s["name"] == "deployer.provision"]
        assert provisions
        assert any(str(s["attrs"].get("node_id", "")).startswith("node-")
                   for s in provisions)

    def test_fetch_and_provision_share_one_trace(self):
        kernel, platform = sharded_platform()
        spans = cold_start_spans(kernel, platform)
        provision_traces = {s["trace"] for s in spans
                            if s["name"] == "deployer.provision"}
        fetch_traces = {s["trace"] for s in spans
                        if s["name"] == "shard.fetch"}
        assert fetch_traces and fetch_traces <= provision_traces


class TestStitchedTraceNodes:
    def span(self, trace, span_id, parent=None, node=None):
        attrs = {} if node is None else {"node_id": node}
        return {"trace": trace, "span": span_id, "parent": parent,
                "name": "s", "attrs": attrs}

    def test_connected_multi_node_tree_qualifies(self):
        spans = [
            self.span("t1", 1, node="node-0"),
            self.span("t1", 2, parent=1, node="store-1"),
            self.span("t1", 3, parent=1, node="store-2"),
        ]
        assert stitched_trace_nodes(spans) == ["node-0", "store-1",
                                               "store-2"]

    def test_disconnected_trace_is_rejected(self):
        spans = [
            self.span("t1", 1, node="node-0"),
            self.span("t1", 2, parent=99, node="store-1"),  # orphan
        ]
        assert stitched_trace_nodes(spans) == []

    def test_unavailable_identity_does_not_count(self):
        spans = [
            self.span("t1", 1, node="node-0"),
            self.span("t1", 2, parent=1, node="unavailable"),
        ]
        assert stitched_trace_nodes(spans) == ["node-0"]

    def test_best_trace_wins(self):
        spans = [
            self.span("t1", 1, node="node-0"),
            self.span("t2", 2, node="node-0"),
            self.span("t2", 3, parent=2, node="store-0"),
        ]
        assert stitched_trace_nodes(spans) == ["node-0", "store-0"]
