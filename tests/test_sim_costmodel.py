"""Tests for the calibrated cost model (the DESIGN.md §4 fits)."""

import pytest

from repro.sim.costmodel import (
    BUILTIN_PROFILES,
    CostModel,
    DEFAULT_COST_MODEL,
    FunctionCosts,
    IMAGE_RESIZER_COSTS,
    MARKDOWN_COSTS,
    NOOP_COSTS,
    SYNTHETIC_BIG,
    SYNTHETIC_MEDIUM,
    SYNTHETIC_SMALL,
    synthetic_costs,
)
from repro.sim.rng import RandomStreams


class TestCostModelFits:
    """The calibration must recover the paper's Table 1 within ~3%."""

    @pytest.mark.parametrize("profile,paper_vanilla", [
        (SYNTHETIC_SMALL, 219.7),
        (SYNTHETIC_MEDIUM, 456.0),
        (SYNTHETIC_BIG, 1621.0),
    ])
    def test_vanilla_fit(self, profile, paper_vanilla):
        m = DEFAULT_COST_MODEL
        predicted = (
            m.clone_ms + m.exec_ms + m.jvm_rts_ms + m.appinit_base_ms
            + m.cold_load_cost(profile.classes, profile.class_kib)
        )
        assert predicted == pytest.approx(paper_vanilla, rel=0.03)

    @pytest.mark.parametrize("profile,paper_nowarmup", [
        (SYNTHETIC_SMALL, 172.5),
        (SYNTHETIC_MEDIUM, 360.9),
        (SYNTHETIC_BIG, 1340.4),
    ])
    def test_nowarmup_fit(self, profile, paper_nowarmup):
        m = DEFAULT_COST_MODEL
        predicted = (
            m.criu_spawn_ms
            + m.restore_cost(profile.snapshot_ready_mib)
            + m.restored_load_cost(profile.classes, profile.class_kib)
        )
        assert predicted == pytest.approx(paper_nowarmup, rel=0.035)

    @pytest.mark.parametrize("profile,paper_warmup", [
        (SYNTHETIC_SMALL, 54.4),
        (SYNTHETIC_BIG, 84.0),
    ])
    def test_warmup_fit(self, profile, paper_warmup):
        m = DEFAULT_COST_MODEL
        predicted = m.criu_spawn_ms + m.restore_cost(profile.snapshot_warm_mib)
        assert predicted == pytest.approx(paper_warmup, rel=0.04)

    def test_restored_per_byte_cheaper_than_cold(self):
        m = DEFAULT_COST_MODEL
        assert m.restored_load_per_kib_ms < m.cold_load_per_kib_ms

    def test_clone_exec_tiny_fraction(self):
        """Fig 4: CLONE+EXEC are a tiny fraction of any start-up."""
        m = DEFAULT_COST_MODEL
        assert (m.clone_ms + m.exec_ms) < 0.05 * m.jvm_rts_ms


class TestCostModelMechanics:
    def test_restore_override_wins(self):
        m = DEFAULT_COST_MODEL
        assert m.restore_cost(100.0, override_ms=12.0) == 12.0

    def test_restore_scales_with_size(self):
        m = DEFAULT_COST_MODEL
        assert m.restore_cost(50.0) > m.restore_cost(10.0)

    def test_dump_scales_with_size(self):
        m = DEFAULT_COST_MODEL
        assert m.dump_cost(100.0) > m.dump_cost(10.0)

    def test_jitter_zero_sigma_is_identity(self):
        m = DEFAULT_COST_MODEL.with_noise_sigma(0.0)
        streams = RandomStreams(seed=0)
        assert m.jitter(42.0, streams, "x") == pytest.approx(42.0)

    def test_with_noise_sigma_does_not_mutate(self):
        m = CostModel()
        m2 = m.with_noise_sigma(0.5)
        assert m.noise_sigma != 0.5
        assert m2.noise_sigma == 0.5
        assert m2.clone_ms == m.clone_ms


class TestProfiles:
    def test_builtin_profiles_registered(self):
        for name in ("noop", "markdown", "image-resizer",
                     "synthetic-small", "synthetic-medium", "synthetic-big"):
            assert name in BUILTIN_PROFILES

    def test_paper_snapshot_sizes(self):
        assert NOOP_COSTS.snapshot_ready_mib == 13.0
        assert MARKDOWN_COSTS.snapshot_ready_mib == 14.0
        assert IMAGE_RESIZER_COSTS.snapshot_ready_mib == pytest.approx(99.2)

    def test_synthetic_sizes_match_paper(self):
        assert SYNTHETIC_SMALL.classes == 374
        assert SYNTHETIC_MEDIUM.classes == 574
        assert SYNTHETIC_BIG.classes == 1574
        assert SYNTHETIC_SMALL.class_kib == pytest.approx(2.8 * 1024)
        assert SYNTHETIC_BIG.class_kib == pytest.approx(41.0 * 1024)

    def test_warm_snapshot_includes_classes(self):
        grow = SYNTHETIC_BIG.snapshot_warm_mib - SYNTHETIC_BIG.snapshot_ready_mib
        assert grow == pytest.approx(41.0, rel=0.01)

    def test_synthetic_uses_first_response_metric(self):
        assert SYNTHETIC_SMALL.startup_metric == "first_response"
        assert NOOP_COSTS.startup_metric == "ready"

    def test_snapshot_mib_selector(self):
        p = SYNTHETIC_SMALL
        assert p.snapshot_mib(warm=False) == p.snapshot_ready_mib
        assert p.snapshot_mib(warm=True) == p.snapshot_warm_mib

    def test_restore_override_selector(self):
        assert NOOP_COSTS.restore_override_ms(warm=False) == 60.0
        assert SYNTHETIC_SMALL.restore_override_ms(warm=True) is None

    def test_synthetic_costs_factory_validation(self):
        profile = synthetic_costs("custom", classes=100, class_kib=500.0)
        assert profile.classes == 100
        assert profile.snapshot_warm_mib > profile.snapshot_ready_mib
