"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulation
from repro.sim.events import Signal


class TestScheduling:
    def test_schedule_in_advances_clock_on_dispatch(self):
        sim = Simulation()
        times = []
        sim.schedule_in(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        sim.clock.advance(10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(9.0, lambda: None)

    def test_run_until_stops_at_time(self):
        sim = Simulation()
        fired = []
        sim.schedule_in(1.0, lambda: fired.append(1))
        sim.schedule_in(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_step_returns_false_when_empty(self):
        assert Simulation().step() is False

    def test_run_detects_livelock(self):
        sim = Simulation()

        def reschedule():
            sim.schedule_in(0.0, reschedule)

        sim.schedule_in(0.0, reschedule)
        with pytest.raises(RuntimeError, match="livelock"):
            sim.run(max_events=1000)


class TestProcesses:
    def test_process_sleeps_for_yielded_delay(self):
        sim = Simulation()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 3.0
            trace.append(sim.now)
            yield 2.0
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0, 3.0, 5.0]

    def test_run_process_returns_value(self):
        sim = Simulation()

        def proc():
            yield 1.0
            return "done"

        assert sim.run_process(proc()) == "done"

    def test_process_waits_on_signal(self):
        sim = Simulation()
        gate = Signal("gate")
        trace = []

        def waiter():
            payload = yield gate
            trace.append((sim.now, payload))

        def firer():
            yield 7.0
            gate.fire("go")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert trace == [(7.0, "go")]

    def test_two_processes_interleave_deterministically(self):
        sim = Simulation()
        trace = []

        def proc(name, delay):
            for _ in range(3):
                yield delay
                trace.append((name, sim.now))

        sim.spawn(proc("fast", 1.0))
        sim.spawn(proc("slow", 2.5))
        sim.run()
        assert trace == [
            ("fast", 1.0), ("fast", 2.0), ("slow", 2.5),
            ("fast", 3.0), ("slow", 5.0), ("slow", 7.5),
        ]

    def test_negative_yield_rejected(self):
        sim = Simulation()

        def proc():
            yield -1.0

        sim.spawn(proc())
        with pytest.raises(ValueError, match="negative delay"):
            sim.run()

    def test_unsupported_yield_type_rejected(self):
        sim = Simulation()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_yield_none_reschedules_at_same_time(self):
        sim = Simulation()
        trace = []

        def proc():
            trace.append(sim.now)
            yield None
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0, 0.0]

    def test_done_signal_fires_with_result(self):
        sim = Simulation()
        results = []

        def proc():
            yield 1.0
            return 42

        process = sim.spawn(proc())
        process.done_signal.wait(lambda value: results.append(value))
        sim.run()
        assert results == [42]
        assert process.finished and process.result == 42

    def test_run_process_detects_starved_process(self):
        sim = Simulation()
        never = Signal("never")

        def proc():
            yield never

        with pytest.raises(RuntimeError, match="waiting on a signal"):
            sim.run_process(proc())


class TestBulkScheduling:
    def test_schedule_many_matches_sequential(self):
        """Bulk scheduling preserves FIFO tie-breaking exactly."""
        times = [3.0, 1.0, 3.0, 0.0, 1.0]

        def run(bulk):
            sim = Simulation()
            trace = []
            entries = [(t, lambda i=i, t=t: trace.append((t, i)))
                       for i, t in enumerate(times)]
            if bulk:
                sim.schedule_many(entries, label="bulk")
            else:
                for t, callback in entries:
                    sim.schedule_at(t, callback)
            sim.run()
            return trace

        assert run(bulk=True) == run(bulk=False)

    def test_schedule_many_rejects_past_times(self):
        sim = Simulation()
        sim.clock.advance(10.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_many([(11.0, lambda: None), (9.0, lambda: None)])
        # the failed batch must not have enqueued anything
        assert len(sim.queue) == 0

    def test_events_dispatched_counter(self):
        sim = Simulation()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        doomed = sim.schedule_at(4.0, lambda: None)
        doomed.cancel()
        sim.run()
        # cancelled events never dispatch
        assert sim.events_dispatched == 3
