"""Metric-accounting tests for the platform study layer."""

import pytest

from repro.bench.platform_study import StudyResult, run_platform_study
from repro.bench.arrivals import poisson_arrivals


class TestStudyResultMath:
    def _result(self, queued, idle=0.0, cold=1):
        return StudyResult(strategy="x", requests=len(queued),
                           cold_starts=cold, queued_ms=list(queued),
                           idle_mib_ms=idle)

    def test_cold_fraction(self):
        result = self._result([0.0] * 10, cold=3)
        assert result.cold_fraction == pytest.approx(0.3)

    def test_cold_fraction_empty(self):
        assert StudyResult("x", 0, 0).cold_fraction == 0.0

    def test_latency_percentiles(self):
        result = self._result([0.0] * 99 + [100.0])
        assert result.latency_p(0.50) == 0.0
        assert result.latency_p(0.99) > 0.0
        assert result.latency_p(1.0) == 100.0

    def test_latency_empty(self):
        assert StudyResult("x", 0, 0).latency_p(0.99) == 0.0

    def test_idle_gib_hours_conversion(self):
        # 1024 MiB held for one hour = 1 GiB·hour.
        result = self._result([], idle=1024.0 * 3_600_000.0)
        assert result.idle_gib_hours == pytest.approx(1.0)


class TestIdleAccounting:
    def test_idle_memory_grows_with_quiet_time(self):
        # Two requests separated by a long quiet period, timeout long
        # enough that the replica is held the whole time.
        trace = [0.0, 120_000.0]
        result = run_platform_study("noop", "prebake", trace,
                                    idle_timeout_ms=300_000.0, seed=3)
        # ~13 MiB held for ~120 s → ≈ 1.56e6 MiB·ms.
        assert result.idle_mib_ms == pytest.approx(13.0 * 120_000.0, rel=0.15)

    def test_no_idle_cost_with_instant_gc(self):
        trace = poisson_arrivals(0.05, 100_000, seed=4)
        result = run_platform_study("noop", "prebake", trace,
                                    idle_timeout_ms=1.0, seed=4)
        # Replicas die almost immediately; held memory is negligible
        # relative to the held-for-the-whole-trace alternative.
        assert result.idle_mib_ms < 13.0 * 100_000.0 * 0.05

    def test_every_request_recorded(self):
        trace = poisson_arrivals(1.0, 30_000, seed=5)
        result = run_platform_study("noop", "vanilla", trace,
                                    idle_timeout_ms=10_000.0, seed=5)
        assert result.requests == len(trace)
        assert len(result.queued_ms) == len(trace)
        assert 1 <= result.cold_starts <= len(trace)
