"""Tests for synthetic class generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.classes import SyntheticClass, generate_classes, total_size_kib


class TestGenerateClasses:
    def test_exact_count(self):
        assert len(generate_classes(374, 2.8 * 1024)) == 374

    def test_total_size_exact(self):
        classes = generate_classes(574, 9.2 * 1024)
        assert total_size_kib(classes) == pytest.approx(9.2 * 1024)

    def test_sizes_heterogeneous(self):
        """Paper: "the loaded classes have different sizes"."""
        classes = generate_classes(100, 1000.0)
        sizes = {round(c.size_kib, 6) for c in classes}
        assert len(sizes) > 50

    def test_deterministic_per_seed(self):
        a = generate_classes(50, 100.0, seed=3)
        b = generate_classes(50, 100.0, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_classes(50, 100.0, seed=3)
        b = generate_classes(50, 100.0, seed=4)
        assert a != b

    def test_names_unique(self):
        classes = generate_classes(200, 500.0)
        assert len({c.name for c in classes}) == 200

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            generate_classes(0, 100.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_classes(10, 0.0)

    def test_class_size_positive_validation(self):
        with pytest.raises(ValueError):
            SyntheticClass(name="x", size_kib=0.0)

    @given(count=st.integers(min_value=1, max_value=500),
           total=st.floats(min_value=0.5, max_value=50_000.0))
    @settings(max_examples=50)
    def test_invariants(self, count, total):
        classes = generate_classes(count, total)
        assert len(classes) == count
        assert total_size_kib(classes) == pytest.approx(total, rel=1e-9)
        assert all(c.size_kib > 0 for c in classes)
