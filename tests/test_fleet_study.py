"""X12 fleet study: workload synthesis, the simulator, the report."""

import json

import numpy as np
import pytest

from repro.bench.fleet_study import (
    FleetStudyConfig,
    _run_repetition,
    fleet_study,
    render_fleet_report,
)
from repro.bench.traces import TraceFormatError, synthesize_fleet_workload

SMALL = dict(requests=5_000, functions=20, compute_nodes=4,
             storage_nodes=4, replication_factor=2)


def small_study(seed=7, **overrides):
    kwargs = dict(SMALL)
    kwargs.update(overrides)
    return fleet_study(repetitions=1, seed=seed, **kwargs)


class TestSynthesizeFleetWorkload:
    def test_meets_request_floor_sorted_and_in_range(self):
        times, fids = synthesize_fleet_workload(
            function_count=30, duration_ms=600_000.0, requests=10_000,
            seed=3)
        assert times.size == fids.size >= 10_000
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.0 and times.max() < 600_000.0
        assert fids.min() >= 0 and fids.max() < 30

    def test_deterministic(self):
        a = synthesize_fleet_workload(10, 100_000.0, 2_000, seed=5)
        b = synthesize_fleet_workload(10, 100_000.0, 2_000, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        c = synthesize_fleet_workload(10, 100_000.0, 2_000, seed=6)
        assert not np.array_equal(a[0], c[0])

    def test_zipf_head_dominates(self):
        _, fids = synthesize_fleet_workload(
            50, 600_000.0, 20_000, seed=1)
        counts = np.bincount(fids, minlength=50)
        # The hottest function beats the median function by a wide
        # margin — the regime where warm pools matter.
        assert counts[0] > 5 * np.median(counts)

    def test_validation(self):
        with pytest.raises(TraceFormatError):
            synthesize_fleet_workload(0, 1000.0, 10)
        with pytest.raises(TraceFormatError):
            synthesize_fleet_workload(5, 0.0, 10)
        with pytest.raises(TraceFormatError):
            synthesize_fleet_workload(5, 1000.0, 0)
        with pytest.raises(TraceFormatError):
            synthesize_fleet_workload(5, 1000.0, 10, bursty_fraction=2.0)


class TestFleetStudy:
    def test_deterministic_artifact(self):
        # The exemplar's span payload embeds process-global image ids
        # (img-NNNNNN), so exact identity only holds across processes;
        # everything else must reproduce bit-for-bit in-process too.
        first = small_study().as_dict()
        second = small_study().as_dict()
        assert first["stitched_nodes"] == second["stitched_nodes"]
        first.pop("exemplar_spans")
        second.pop("exemplar_spans")
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_headline_invariants(self):
        result = small_study()
        rep = result.headline
        assert rep.requests >= SMALL["requests"]
        assert 0 < rep.cold_starts <= rep.requests
        assert 0.0 < rep.cold_p50_ms <= rep.cold_p99_ms
        assert 0.0 <= rep.cache_hit_rate <= 1.0
        assert 0.0 <= rep.locality_hit_rate <= 1.0
        assert rep.cross_node_bytes > 0
        # Per-node requests sum to the fleet total.
        compute = [row for row in rep.per_node_rows
                   if str(row["node"]).startswith("node-")]
        assert sum(int(row["requests"]) for row in compute) == rep.requests
        assert sum(int(row["cold"]) for row in compute) == rep.cold_starts

    def test_load_spreads_across_compute_nodes(self):
        rep = small_study().headline
        compute = [row for row in rep.per_node_rows
                   if str(row["node"]).startswith("node-")]
        busy = [row for row in compute if int(row["requests"]) > 0]
        assert len(busy) == len(compute), "idle compute node in the fleet"

    def test_attribution_covers_every_cold_start(self):
        rep = small_study().headline
        attribution = rep.attribution
        assert attribution is not None
        assert sum(c.count for c in attribution.cells()) == rep.cold_starts
        # Exact decomposition: blamed milliseconds reproduce the total
        # cold-start time the histograms saw (only summation-order
        # float dust apart).
        hist_total = sum(
            float(w["count"]) * 0.0 for w in rep.window_points)
        del hist_total  # windows only hold quantiles; compare per-cell
        for cell in attribution.cells():
            phase_sum = 0.0
            for value in cell.phase_ms.values():
                phase_sum += value
            assert phase_sum == pytest.approx(cell.total_ms, rel=1e-9)

    def test_hot_functions_rank_matches_zipf_head(self):
        rep = small_study().headline
        assert rep.hot_functions
        assert rep.hot_functions[0][0] == "fn-000"

    def test_windows_are_streamed(self):
        rep = small_study().headline
        assert rep.window_points
        assert all(p["count"] > 0 for p in rep.window_points)

    def test_flight_ring_drops_are_accounted(self):
        config = FleetStudyConfig(flight_capacity=32, **SMALL)
        rep = _run_repetition(config, seed=7, rep=0)
        assert rep.flight_dropped > 0

    def test_storage_outage_produces_degraded_bucket(self):
        # A tiny cache keeps remote fetches alive through the outage
        # window, so some cold starts must take retry hops.
        config = FleetStudyConfig(node_cache_mib=8, **SMALL)
        rep = _run_repetition(config, seed=7, rep=0)
        assert rep.degraded_cold_starts > 0
        outcomes = {c.outcome for c in rep.attribution.cells()}
        assert "degraded" in outcomes

    def test_exemplar_is_stitched_across_nodes(self):
        result = small_study()
        nodes = result.stitched_nodes()
        assert len(nodes) >= 2
        assert any(n.startswith("node-") for n in nodes)
        assert any(n.startswith("store-") for n in nodes)

    def test_render_report_names_the_stitch(self):
        result = small_study()
        report = render_fleet_report(result.as_dict())
        assert "stitched multi-node trace: yes" in report
        assert "cold-start blame table" in report
        assert "flight events dropped" in report

    def test_artifact_round_trips_through_json(self):
        artifact = small_study().as_dict()
        clone = json.loads(json.dumps(artifact, sort_keys=True))
        assert render_fleet_report(clone) == render_fleet_report(artifact)
