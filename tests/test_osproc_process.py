"""Tests for processes, threads and descriptors."""

import pytest

from repro.osproc.filesystem import VirtualFile
from repro.osproc.process import Capability, Process, ProcessState, Thread, ThreadState


def make_process(pid=100):
    return Process(pid=pid, ppid=1, comm="test")


class TestProcess:
    def test_fresh_process_is_running(self):
        proc = make_process()
        assert proc.state is ProcessState.RUNNING
        assert proc.alive

    def test_has_one_initial_thread(self):
        proc = make_process()
        assert len(proc.threads) == 1
        assert proc.threads[0].state is ThreadState.RUNNING

    def test_spawn_thread(self):
        proc = make_process()
        t = proc.spawn_thread("worker")
        assert t in proc.threads
        assert t.name == "worker"

    def test_spawn_thread_requires_running(self):
        proc = make_process()
        proc.state = ProcessState.ZOMBIE
        with pytest.raises(RuntimeError):
            proc.spawn_thread()

    def test_thread_ids_unique(self):
        proc = make_process()
        tids = {proc.spawn_thread().tid for _ in range(10)}
        tids.add(proc.threads[0].tid)
        assert len(tids) == 11

    @pytest.mark.parametrize("state,alive", [
        (ProcessState.RUNNING, True),
        (ProcessState.FROZEN, True),
        (ProcessState.TRACED, True),
        (ProcessState.RESTORING, True),
        (ProcessState.ZOMBIE, False),
        (ProcessState.DEAD, False),
    ])
    def test_alive_by_state(self, state, alive):
        proc = make_process()
        proc.state = state
        assert proc.alive is alive


class TestDescriptors:
    def test_open_fd_numbers_start_at_3(self):
        proc = make_process()
        fd = proc.open_fd(VirtualFile("/f"))
        assert fd.fd == 3

    def test_fd_numbers_increment(self):
        proc = make_process()
        fds = [proc.open_fd(VirtualFile(f"/f{i}")).fd for i in range(3)]
        assert fds == [3, 4, 5]

    def test_close_fd(self):
        proc = make_process()
        fd = proc.open_fd(VirtualFile("/f"))
        proc.close_fd(fd.fd)
        assert fd.closed
        assert proc.open_files() == []

    def test_close_unknown_fd_rejected(self):
        with pytest.raises(KeyError):
            make_process().close_fd(7)

    def test_open_files_excludes_closed(self):
        proc = make_process()
        keep = proc.open_fd(VirtualFile("/keep"))
        drop = proc.open_fd(VirtualFile("/drop"))
        proc.close_fd(drop.fd)
        assert [d.fd for d in proc.open_files()] == [keep.fd]


class TestCapabilities:
    def test_default_no_capabilities(self):
        assert not make_process().has_capability(Capability.SYS_ADMIN)

    def test_granted_capability(self):
        proc = Process(pid=1, ppid=0, comm="x",
                       capabilities={Capability.CHECKPOINT_RESTORE})
        assert proc.has_capability(Capability.CHECKPOINT_RESTORE)
        assert not proc.has_capability(Capability.SYS_ADMIN)
