"""Acceptance tests for the X9 incident pipeline (issue criteria).

* a seeded run with injected ``restore.fail`` seals >= 1 postmortem
  bundle and the detector flags the injected-fault window;
* a clean run (fault rate 0) flags nothing and seals nothing;
* replaying a bundle's recipe deterministically reproduces the same
  fault-schedule digest and the same anomaly set;
* the chaos sweep's rendered table is byte-identical with and without
  postmortem collection.
"""

from repro.bench.chaos import chaos_experiment
from repro.bench.incident import (
    incident_experiment,
    replay_recipe,
)

# One seeded run shared by the acceptance assertions (the experiment
# drives ~18 requests through the full platform; re-running it per
# test would triple the wall time for no extra coverage).
_RESULT = {}


def _run(tmp_path_factory):
    if "run" not in _RESULT:
        out = tmp_path_factory.mktemp("bundles")
        _RESULT["run"] = incident_experiment(seed=42, postmortem_dir=out)
    return _RESULT["run"]


class TestInjectedFaultRun:
    def test_seals_bundles_with_replayable_recipes(self, tmp_path_factory):
        result = _run(tmp_path_factory)
        assert result.bundles
        assert len(result.bundle_paths) == len(result.bundles)
        for bundle in result.bundles:
            assert bundle.replay["fault_site"] == "restore.fail"
            assert bundle.replay["seed"] == 42

    def test_detector_flags_the_fault_window(self, tmp_path_factory):
        result = _run(tmp_path_factory)
        flagged = result.anomalies_in_fault_window()
        assert flagged
        detectors = {e.detector for e in flagged}
        assert "cold-start-latency" in detectors
        assert "restore-failure-rate" in detectors
        # Warmup stayed quiet: every flag overlaps the fault interval.
        assert len(flagged) == len(result.anomalies)

    def test_fallback_absorbs_the_faults(self, tmp_path_factory):
        result = _run(tmp_path_factory)
        assert result.faults_fired > 0
        assert result.errors == 0  # vanilla fallback kept serving

    def test_flight_tape_saw_the_injections(self, tmp_path_factory):
        result = _run(tmp_path_factory)
        kinds = [e["kind"] for e in result.flight_events]
        assert "fault.injected" in kinds
        assert "restore.failed" in kinds
        assert "anomaly.detected" in kinds

    def test_replay_reproduces_digest_and_anomalies(self, tmp_path_factory):
        result = _run(tmp_path_factory)
        replayed = replay_recipe(result.bundles[0].replay)
        assert replayed.schedule_digest == result.schedule_digest
        assert replayed.anomaly_signature() == result.anomaly_signature()
        assert len(replayed.bundles) == len(result.bundles)


class TestCleanRun:
    def test_no_flags_and_no_bundles_without_faults(self):
        result = incident_experiment(seed=42, fault_rate=0.0,
                                     fault_requests=2,
                                     cooldown_requests=0)
        assert result.anomalies == []
        assert result.bundles == []
        assert result.errors == 0
        assert result.faults_fired == 0


class TestRenderAndCli:
    def test_render_mentions_the_flags(self, tmp_path_factory):
        result = _run(tmp_path_factory)
        text = result.render()
        assert "cold-start-latency" in text
        assert "fault schedule digest" in text
        assert f"postmortem bundles sealed: {len(result.bundles)}" in text

    def test_bench_cli_runs_incident(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        code = bench_main(["incident", "--postmortem-dir",
                           str(tmp_path / "pm"),
                           "--flight-out", str(tmp_path / "tape.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "Incident run" in out
        assert (tmp_path / "tape.jsonl").exists()
        assert list((tmp_path / "pm").glob("postmortem-*.json"))


class TestChaosPostmortemPath:
    def test_table_unchanged_by_collection(self, tmp_path):
        plain = chaos_experiment(repetitions=2, seed=42)
        collected = chaos_experiment(repetitions=2, seed=42,
                                     postmortem_dir=tmp_path)
        assert collected.render() == plain.render()
