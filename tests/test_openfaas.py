"""Tests for the OpenFaaS integration layer (paper §5)."""

import pytest

from repro import make_world
from repro.faas.openfaas import (
    AlertRule,
    ContainerImage,
    FaasCliError,
    ImageLayer,
    ImageNotFound,
    ImageRepository,
    PrometheusLite,
    ProviderError,
    Template,
    TemplateStore,
)
from repro.faas.openfaas.stack import make_openfaas_stack
from repro.faas.openfaas.templates import TemplateError
from repro.functions import MarkdownFunction, NoopFunction
from repro.runtime.base import Request


@pytest.fixture
def stack(kernel):
    return make_openfaas_stack(kernel)


class TestTemplates:
    def test_builtin_templates_present(self):
        store = TemplateStore()
        for name in ("java8", "python3", "node12", "java8-criu",
                     "java8-criu-warm"):
            assert store.get(name).name == name

    def test_criu_templates_flagged(self):
        store = TemplateStore()
        assert store.get("java8-criu").criu_enabled
        assert not store.get("java8").criu_enabled
        assert len(store.criu_templates()) >= 3

    def test_criu_template_policies(self):
        store = TemplateStore()
        assert store.get("java8-criu").snapshot_policy().key == "after-ready"
        assert store.get("java8-criu-warm").snapshot_policy().key == "after-warmup-1"

    def test_non_criu_template_has_no_policy(self):
        with pytest.raises(TemplateError):
            TemplateStore().get("java8").snapshot_policy()

    def test_unknown_template(self):
        with pytest.raises(TemplateError, match="available"):
            TemplateStore().get("rust")

    def test_duplicate_template_rejected(self):
        store = TemplateStore()
        with pytest.raises(TemplateError, match="duplicate"):
            store.add(Template(name="java8", language="java", runtime_kind="jvm"))


class TestImageRepository:
    def _image(self, tag="1"):
        return ContainerImage(repository="registry.local/fn", tag=tag,
                              layers=[ImageLayer("base", 100)])

    def test_push_pull(self):
        repo = ImageRepository()
        image = self._image()
        repo.push(image)
        assert repo.pull("registry.local/fn:1") is image
        assert repo.pull_count("registry.local/fn:1") == 1

    def test_pull_missing(self):
        with pytest.raises(ImageNotFound):
            ImageRepository().pull("ghost:1")

    def test_total_bytes(self):
        repo = ImageRepository()
        repo.push(self._image("1"))
        repo.push(self._image("2"))
        assert repo.total_bytes == 200


class TestPrometheus:
    def test_counter_and_gauge(self):
        prom = PrometheusLite()
        prom.inc("hits", labels={"fn": "a"})
        prom.inc("hits", 2, labels={"fn": "a"})
        prom.set_gauge("replicas", 4, labels={"fn": "a"})
        assert prom.value("hits", {"fn": "a"}) == 3
        assert prom.value("replicas") == 4

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError):
            PrometheusLite().inc("x", -1)

    def test_label_subset_matching(self):
        prom = PrometheusLite()
        prom.inc("hits", labels={"fn": "a", "code": "200"})
        prom.inc("hits", labels={"fn": "b", "code": "200"})
        assert prom.value("hits") == 2
        assert prom.value("hits", {"fn": "a"}) == 1

    def test_alert_fires_and_delivers(self):
        prom = PrometheusLite()
        fired = []
        prom.subscribe(fired.append)
        prom.add_rule(AlertRule(name="hot", metric="load", threshold=5.0))
        prom.set_gauge("load", 10.0)
        alerts = prom.evaluate(now_ms=1.0)
        assert len(alerts) == 1
        assert fired[0].value == 10.0

    def test_alert_below_threshold_silent(self):
        prom = PrometheusLite()
        prom.add_rule(AlertRule(name="hot", metric="load", threshold=5.0))
        prom.set_gauge("load", 5.0)
        assert prom.evaluate() == []

    def test_less_than_rule(self):
        prom = PrometheusLite()
        prom.add_rule(AlertRule(name="low", metric="free", threshold=2.0,
                                comparison="<"))
        prom.set_gauge("free", 1.0)
        assert len(prom.evaluate()) == 1

    def test_less_than_rule_fires_on_absent_metric(self):
        # An unwritten metric sums to 0, which is below any positive
        # threshold — "<" rules see missing data as an outage.
        prom = PrometheusLite()
        prom.add_rule(AlertRule(name="low", metric="free", threshold=2.0,
                                comparison="<"))
        (alert,) = prom.evaluate()
        assert alert.value == 0.0

    def test_rule_with_label_filter_sums_matching_series_only(self):
        prom = PrometheusLite()
        prom.add_rule(AlertRule(name="hot-a", metric="pending", threshold=3.0,
                                labels={"fn": "a"}))
        prom.set_gauge("pending", 10.0, labels={"fn": "b"})
        assert prom.evaluate() == []  # fn=b alone must not trip fn=a's rule
        prom.set_gauge("pending", 4.0, labels={"fn": "a"})
        (alert,) = prom.evaluate()
        assert alert.value == 4.0

    def test_less_than_rule_with_label_filter(self):
        prom = PrometheusLite()
        prom.add_rule(AlertRule(name="starved", metric="idle", threshold=1.0,
                                comparison="<", labels={"fn": "a"}))
        prom.set_gauge("idle", 5.0, labels={"fn": "b"})
        prom.set_gauge("idle", 0.0, labels={"fn": "a"})
        (alert,) = prom.evaluate(now_ms=3.0)
        assert alert.value == 0.0
        assert alert.at_ms == 3.0

    def test_unsupported_comparison_rejected(self):
        rule = AlertRule(name="bad", metric="m", threshold=1.0,
                         comparison=">=")
        with pytest.raises(ValueError, match="unsupported comparison"):
            rule.evaluate(2.0)

    def test_exact_threshold_never_fires(self):
        rule = AlertRule(name="edge", metric="m", threshold=5.0)
        assert not rule.evaluate(5.0)
        assert not AlertRule(name="edge", metric="m", threshold=5.0,
                             comparison="<").evaluate(5.0)

    def test_histogram_series_invisible_to_rules(self):
        # Alert rules compare scalar sums; observations must not trip them.
        prom = PrometheusLite()
        prom.add_rule(AlertRule(name="hot", metric="lat_ms", threshold=1.0))
        prom.observe("lat_ms", 100.0)
        assert prom.evaluate() == []

    def test_shared_registry_is_visible_to_rules(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        prom = PrometheusLite(registry=registry)
        prom.add_rule(AlertRule(name="hot", metric="load", threshold=5.0))
        registry.set_gauge("load", 10.0)  # written outside PrometheusLite
        (alert,) = prom.evaluate()
        assert alert.value == 10.0


class TestCliWorkflow:
    def test_new_build_push_deploy_invoke(self, stack):
        stack.cli.new("md", "java8-criu-warm", MarkdownFunction)
        image = stack.cli.build("md")
        assert image.has_snapshot
        assert image.requires_privileged
        assert image.snapshot_layer() is not None
        stack.cli.push("md")
        stack.cli.deploy("md")
        response = stack.gateway.invoke("md", Request(body="# X"))
        assert "<h1>X</h1>" in response.body

    def test_up_shortcut(self, stack):
        stack.cli.new("noop", "java8", NoopFunction)
        stack.cli.up("noop", initial_replicas=1)
        assert stack.gateway.replica_count("noop") == 1

    def test_vanilla_template_image_has_no_snapshot(self, stack):
        stack.cli.new("noop", "java8", NoopFunction)
        image = stack.cli.build("noop")
        assert not image.has_snapshot
        assert not image.requires_privileged

    def test_new_duplicate_project_rejected(self, stack):
        stack.cli.new("a", "java8", NoopFunction)
        with pytest.raises(FaasCliError, match="already exists"):
            stack.cli.new("a", "java8", NoopFunction)

    def test_runtime_template_mismatch_rejected(self, stack):
        with pytest.raises(FaasCliError, match="runtime"):
            stack.cli.new("bad", "python3", NoopFunction)

    def test_build_without_new_rejected(self, stack):
        with pytest.raises(FaasCliError, match="no project"):
            stack.cli.build("ghost")

    def test_push_before_build_rejected(self, stack):
        stack.cli.new("a", "java8", NoopFunction)
        with pytest.raises(FaasCliError, match="not been built"):
            stack.cli.push("a")

    def test_deploy_before_push_rejected(self, stack):
        stack.cli.new("a", "java8", NoopFunction)
        stack.cli.build("a")
        with pytest.raises(FaasCliError, match="built and pushed"):
            stack.cli.deploy("a")

    def test_criu_build_requires_buildx(self, kernel):
        """§5.2: usual docker build cannot run privileged operations."""
        stack = make_openfaas_stack(kernel, buildx_installed=False)
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        with pytest.raises(FaasCliError, match="Buildx"):
            stack.cli.build("md")
        # Vanilla builds still work without buildx.
        stack.cli.new("ok", "java8", NoopFunction)
        stack.cli.build("ok")

    def test_bump_version_rebuilds(self, stack):
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        first = stack.cli.build("md")
        version = stack.cli.bump_version("md")
        assert version == 2
        second = stack.cli.build("md")
        assert second.tag == "2"
        assert first.snapshot_key != second.snapshot_key


class TestGateway:
    def test_cold_start_on_first_invoke(self, stack):
        stack.cli.new("noop", "java8-criu", NoopFunction)
        stack.cli.up("noop")
        assert stack.gateway.replica_count("noop") == 0
        stack.gateway.invoke("noop")
        assert stack.gateway.replica_count("noop") == 1
        assert stack.prometheus.value("gateway_cold_start_total",
                                      {"function": "noop"}) == 1

    def test_scale_up_and_down(self, stack):
        stack.cli.new("noop", "java8", NoopFunction)
        stack.cli.up("noop")
        stack.gateway.scale("noop", 3)
        assert stack.gateway.replica_count("noop") == 3
        stack.gateway.scale("noop", 1)
        assert stack.gateway.replica_count("noop") == 1

    def test_invoke_unknown_service(self, stack):
        from repro.faas.openfaas.gateway import GatewayError
        with pytest.raises(GatewayError, match="not deployed"):
            stack.gateway.invoke("ghost")

    def test_remove_service(self, stack):
        stack.cli.new("noop", "java8", NoopFunction)
        stack.cli.up("noop", initial_replicas=2)
        stack.gateway.remove("noop")
        assert "noop" not in stack.gateway.services()
        assert stack.provider.service_containers("noop") == []

    def test_invocation_metrics_counted(self, stack):
        stack.cli.new("noop", "java8", NoopFunction)
        stack.cli.up("noop")
        for _ in range(3):
            stack.gateway.invoke("noop")
        assert stack.prometheus.value("gateway_function_invocation_total",
                                      {"function": "noop"}) == 3


class TestProviders:
    def test_swarm_refuses_privileged_snapshot_image(self, kernel):
        stack = make_openfaas_stack(kernel, provider_name="dockerswarm")
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        stack.cli.build("md")
        stack.cli.push("md")
        stack.cli.deploy("md")
        with pytest.raises(ProviderError):
            stack.gateway.invoke("md")

    def test_swarm_with_unprivileged_cr_capability(self, kernel):
        """CAP_CHECKPOINT_RESTORE [11] removes the --privileged need."""
        stack = make_openfaas_stack(kernel, provider_name="dockerswarm",
                                    allow_unprivileged_cr=True)
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        stack.cli.build("md")
        stack.cli.push("md")
        stack.cli.deploy("md")
        response = stack.gateway.invoke("md")
        assert response.ok

    def test_kubernetes_runs_privileged(self, stack):
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        stack.cli.up("md", initial_replicas=1)
        containers = stack.provider.service_containers("md")
        assert containers[0].container.privileged

    def test_unknown_provider_rejected(self, kernel):
        with pytest.raises(ValueError):
            make_openfaas_stack(kernel, provider_name="nomad")


class TestWatchdog:
    def test_health_endpoint(self, stack):
        stack.cli.new("noop", "java8", NoopFunction)
        stack.cli.up("noop", initial_replicas=1)
        service = stack.gateway._services["noop"]
        watchdog = service.replicas[0].watchdog
        assert watchdog.healthy()
        assert watchdog.health_checks >= 1

    def test_watchdog_shutdown_kills_function(self, stack):
        stack.cli.new("noop", "java8", NoopFunction)
        stack.cli.up("noop", initial_replicas=1)
        service = stack.gateway._services["noop"]
        replica = service.replicas[0]
        function_proc = replica.watchdog.handle.process
        stack.gateway.scale("noop", 0)
        assert not function_proc.alive

    def test_unprivileged_watchdog_cannot_restore(self, kernel):
        """The watchdog needs --privileged to run criu restore."""
        from repro.core.bake import Prebaker
        from repro.core.starters import PrebakeStarter
        from repro.criu.restore import RestoreError
        from repro.faas.openfaas.watchdog import Watchdog
        app = MarkdownFunction()
        prebaker = Prebaker(kernel)
        prebaker.bake(app)
        starter = PrebakeStarter(kernel, prebaker.store)
        watchdog = Watchdog(kernel, privileged=False)
        with pytest.raises(RestoreError, match="capability"):
            watchdog.start_function(starter, app)
