"""Tests for the exporters (Prometheus text, JSONL) and the trace CLI."""

import json

import pytest

from repro.obs.cli import main as cli_main
from repro.obs.cli import render_tree, summarize
from repro.obs.export import (
    metrics_to_jsonl,
    parse_prometheus,
    read_trace_jsonl,
    render_prometheus,
    spans_to_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


def _loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("requests_total", 3.0, labels={"fn": "a"})
    reg.inc("requests_total", 1.0, labels={"fn": "b"})
    reg.set_gauge("replicas", 2.0, labels={"fn": "a"})
    reg.set_gauge("load", 0.75)
    for v in (1.5, 2.5, 40.0, 41.0, 300.0):
        reg.observe("latency_ms", v, labels={"fn": "a"})
    return reg


class TestPrometheusRoundTrip:
    def test_counters_and_gauges_round_trip(self):
        reg = _loaded_registry()
        parsed = parse_prometheus(render_prometheus(reg))
        assert parsed["requests_total"][(("fn", "a"),)] == 3.0
        assert parsed["requests_total"][(("fn", "b"),)] == 1.0
        assert parsed["replicas"][(("fn", "a"),)] == 2.0
        assert parsed["load"][()] == 0.75

    def test_histogram_summary_round_trips_quantiles(self):
        reg = _loaded_registry()
        parsed = parse_prometheus(render_prometheus(reg))
        for q in (0.5, 0.95, 0.99):
            key = tuple(sorted((("fn", "a"), ("quantile", str(q)))))
            assert parsed["latency_ms"][key] == reg.quantile(
                "latency_ms", q, {"fn": "a"})
        assert parsed["latency_ms_count"][(("fn", "a"),)] == 5.0
        assert parsed["latency_ms_sum"][(("fn", "a"),)] == pytest.approx(385.0)

    def test_kind_grouping_and_type_lines(self):
        text = render_prometheus(_loaded_registry())
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert type_lines == [
            "# TYPE requests_total counter",
            "# TYPE load gauge",
            "# TYPE replicas gauge",
            "# TYPE latency_ms summary",
        ]

    def test_rendering_is_deterministic(self):
        assert render_prometheus(_loaded_registry()) == \
            render_prometheus(_loaded_registry())

    def test_label_value_escaping_round_trips(self):
        reg = MetricsRegistry()
        tricky = 'quo"te\\slash\nnewline'
        reg.inc("odd", labels={"k": tricky})
        parsed = parse_prometheus(render_prometheus(reg))
        assert parsed["odd"][(("k", tricky),)] == 1.0

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_parse_skips_comments_and_blanks(self):
        parsed = parse_prometheus("# HELP x\n\nx 1\n")
        assert parsed == {"x": {(): 1.0}}

    @pytest.mark.parametrize("line", [
        "lonetoken",
        'metric{unclosed="1" 2',
        "metric{k=unquoted} 1",
        "metric notanumber",
    ])
    def test_parse_rejects_malformed_lines(self, line):
        with pytest.raises(ValueError):
            parse_prometheus(line)


def _sample_trace():
    """A two-trace span set: one nested trace, one flat errored trace."""
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("episode", rep=0):
        clock.now = 2.0
        with tracer.span("restore", image="img-1"):
            clock.now = 12.0
        clock.now = 15.0
    try:
        with tracer.span("episode", rep=1):
            clock.now = 18.0
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    return [s.as_dict() for s in tracer.spans]


class TestJsonl:
    def test_spans_to_jsonl_one_object_per_line(self):
        records = _sample_trace()
        text = spans_to_jsonl(records)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["name"] for line in lines)

    def test_write_then_read_round_trip(self, tmp_path):
        records = _sample_trace()
        path = write_trace_jsonl(tmp_path / "trace.jsonl", records)
        assert read_trace_jsonl(path) == records
        # a str path works too
        assert read_trace_jsonl(str(path)) == records

    def test_read_accepts_raw_text(self):
        records = _sample_trace()
        assert read_trace_jsonl(spans_to_jsonl(records)) == records

    def test_read_rejects_bad_json(self):
        with pytest.raises(ValueError, match="bad trace line 1"):
            read_trace_jsonl("{not json}")

    def test_read_rejects_non_span_records(self):
        with pytest.raises(ValueError, match="not a span record"):
            read_trace_jsonl('{"foo": 1}')

    def test_metrics_to_jsonl_includes_quantiles(self):
        lines = metrics_to_jsonl(_loaded_registry()).strip().splitlines()
        records = [json.loads(line) for line in lines]
        by_name = {r["metric"]: r for r in records}
        assert by_name["requests_total"]["kind"] == "counter"
        hist = [r for r in records if r["metric"] == "latency_ms"][0]
        assert hist["count"] == 5
        assert set(hist["quantiles"]) == {"0.5", "0.95", "0.99"}


class TestCliSummaries:
    def test_summarize_groups_by_name(self):
        table = summarize(_sample_trace())
        lines = table.splitlines()
        assert lines[0].split()[:2] == ["span", "count"]
        episode_row = next(l for l in lines if l.startswith("episode"))
        assert episode_row.split()[1] == "2"   # two episode spans
        assert episode_row.split()[-1] == "1"  # one errored

    def test_summarize_skips_unfinished_spans(self):
        records = _sample_trace()
        records.append({"name": "open", "duration_ms": None})
        assert "open" not in summarize(records)

    def test_render_tree_nests_children(self):
        tree = render_tree(_sample_trace())
        lines = tree.splitlines()
        assert lines[0] == "trace t-0001"
        assert lines[1].startswith("  episode")
        assert lines[2].startswith("    restore")
        assert "image=img-1" in lines[2]

    def test_render_tree_marks_errors(self):
        tree = render_tree(_sample_trace(), trace_id="t-0002")
        assert "[error]" in tree

    def test_render_tree_unknown_trace_exits(self):
        with pytest.raises(SystemExit, match="no spans"):
            render_tree(_sample_trace(), trace_id="t-9999")

    def test_render_tree_empty(self):
        assert render_tree([]) == "(empty trace)"


class TestCliMain:
    def _trace_file(self, tmp_path):
        return write_trace_jsonl(tmp_path / "trace.jsonl", _sample_trace())

    def test_summary_output(self, tmp_path, capsys):
        assert cli_main([str(self._trace_file(tmp_path))]) == 0
        captured = capsys.readouterr()
        assert "span" in captured.out and "restore" in captured.out
        assert "event=trace.summarized" in captured.err

    def test_tree_output(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert cli_main([str(path), "--tree", "--trace", "t-0001"]) == 0
        assert "trace t-0001" in capsys.readouterr().out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "ghost.jsonl")]) == 1
        assert "event=trace.unreadable" in capsys.readouterr().err

    def test_empty_file_warns(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli_main([str(empty)]) == 0
        assert "event=trace.empty" in capsys.readouterr().err
