"""Tests for the virtual clock."""

import pytest

from repro.sim.clock import ClockError, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=12.5).now == 12.5

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.25) == 3.25
        assert clock.now == 3.25

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(2.0)
        clock.advance(0.5)
        assert clock.now == pytest.approx(3.5)

    def test_advance_by_zero_is_allowed(self):
        clock = SimClock(start=5.0)
        clock.advance(0.0)
        assert clock.now == 5.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-0.001)

    def test_set_time_moves_forward(self):
        clock = SimClock()
        clock.set_time(10.0)
        assert clock.now == 10.0

    def test_set_time_to_current_is_noop(self):
        clock = SimClock(start=4.0)
        clock.set_time(4.0)
        assert clock.now == 4.0

    def test_set_time_backwards_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ClockError):
            clock.set_time(9.999)
