"""Tests for snapshot-timing policies."""

import pytest

from repro.core.policy import (
    AfterReady,
    AfterRuntimeBoot,
    AfterWarmup,
    policy_from_key,
)


class TestPolicies:
    def test_after_ready_is_not_warm(self):
        assert AfterReady().warm is False
        assert AfterReady().key == "after-ready"

    def test_after_runtime_boot(self):
        assert AfterRuntimeBoot().warm is False
        assert AfterRuntimeBoot().key == "after-runtime-boot"

    def test_after_warmup_is_warm(self):
        policy = AfterWarmup(requests=1)
        assert policy.warm is True
        assert policy.key == "after-warmup-1"

    def test_after_warmup_multiple_requests(self):
        assert AfterWarmup(requests=5).key == "after-warmup-5"

    def test_after_warmup_requires_positive(self):
        with pytest.raises(ValueError):
            AfterWarmup(requests=0)

    def test_policies_hashable_and_equal(self):
        assert AfterReady() == AfterReady()
        assert AfterWarmup(1) == AfterWarmup(1)
        assert AfterWarmup(1) != AfterWarmup(2)
        assert len({AfterReady(), AfterReady(), AfterWarmup(1)}) == 2


class TestPolicyFromKey:
    @pytest.mark.parametrize("policy", [
        AfterReady(), AfterRuntimeBoot(), AfterWarmup(1), AfterWarmup(7),
    ])
    def test_roundtrip(self, policy):
        assert policy_from_key(policy.key) == policy

    @pytest.mark.parametrize("bad", ["", "nonsense", "after-warmup-", "after-warmup-x"])
    def test_invalid_keys_rejected(self, bad):
        with pytest.raises(ValueError):
            policy_from_key(bad)
