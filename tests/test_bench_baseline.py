"""The continuous-performance gate: record, compare, exit codes.

The issue's acceptance bar: ``compare`` exits nonzero on a synthetic
>=20% p50 regression and zero on an identical-seed re-run. The heavy
collectors (fig3 / restore-sweep / chaos) are exercised elsewhere; the
gate mechanics are tested here against a registered in-memory bench so
the full CLI path runs in milliseconds.
"""

import json

import pytest

from repro.bench import baseline
from repro.bench.baseline import (
    BENCHES,
    Bench,
    MetricBaseline,
    TOLERANCE_CAP,
    baseline_path,
    compare_metrics,
    load_baseline,
    metric_from_values,
    record,
    scalar_metric,
)


def fake_collect(repetitions, seed):
    """Deterministic pseudo-bench: values derive from (reps, seed)."""
    values = [100.0 + seed + i for i in range(repetitions)]
    return {
        "startup_ms": metric_from_values(values),
        "success_rate": scalar_metric(0.99, direction=baseline.HIGHER),
    }


@pytest.fixture
def fake_bench(monkeypatch):
    monkeypatch.setitem(BENCHES, "fake",
                        Bench("fake", fake_collect, default_repetitions=8))
    return "fake"


class TestMetricSummaries:
    def test_distribution_metric_fields(self):
        metric = metric_from_values([1.0, 2.0, 3.0, 4.0, 5.0])
        assert metric.p50 == 3.0
        assert metric.n == 5
        assert metric.ci_low is not None and metric.ci_low <= metric.p50
        assert metric.ci_high >= metric.p50

    def test_scalar_metric_collapses(self):
        metric = scalar_metric(0.5, direction=baseline.HIGHER)
        assert metric.p50 == metric.p99 == metric.mean == 0.5
        assert metric.n == 1 and metric.ci_low is None

    def test_round_trip_through_dict(self):
        metric = metric_from_values([1.0, 2.0, 3.0])
        assert MetricBaseline.from_dict(metric.to_dict()) == metric


class TestCompareMetrics:
    def base(self, p50=100.0, direction=baseline.LOWER, n=10):
        return {"m": MetricBaseline(p50=p50, p99=p50 * 1.1, mean=p50,
                                    n=n, direction=direction,
                                    ci_low=p50 * 0.99, ci_high=p50 * 1.01)}

    def test_identical_metrics_pass(self):
        regressions, missing = compare_metrics(self.base(), self.base())
        assert regressions == [] and missing == []

    def test_twenty_five_percent_p50_regression_trips(self):
        current = self.base(p50=125.0)
        regressions, _ = compare_metrics(self.base(), current)
        assert any(r.statistic == "p50" for r in regressions)

    def test_twenty_percent_always_exceeds_the_cap(self):
        # Even a huge recorded CI cannot stretch tolerance past the cap.
        wide = self.base()
        wide["m"].ci_low, wide["m"].ci_high = 10.0, 190.0
        regressions, _ = compare_metrics(wide, self.base(p50=121.0))
        assert regressions, "cap must keep >=20% drift detectable"
        assert regressions[0].allowed_pct == pytest.approx(
            100.0 * TOLERANCE_CAP)

    def test_improvement_never_trips_lower_direction(self):
        regressions, _ = compare_metrics(self.base(), self.base(p50=50.0))
        assert regressions == []

    def test_higher_direction_flags_drops(self):
        base = self.base(p50=1.0, direction=baseline.HIGHER, n=1)
        regressions, _ = compare_metrics(base, self.base(
            p50=0.7, direction=baseline.HIGHER, n=1))
        assert regressions and regressions[0].statistic == "p50"

    def test_within_tolerance_drift_passes(self):
        regressions, _ = compare_metrics(self.base(), self.base(p50=105.0))
        assert regressions == []

    def test_missing_metric_is_reported(self):
        regressions, missing = compare_metrics(self.base(), {})
        assert regressions == [] and missing == ["m"]

    def test_noisy_baseline_widens_tolerance(self):
        noisy = self.base()
        noisy["m"].ci_low, noisy["m"].ci_high = 88.0, 112.0  # ±12%
        regressions, _ = compare_metrics(noisy, self.base(p50=111.0))
        assert regressions == []  # 11% drift inside the 12% CI half-width


class TestRecordAndCompareCli:
    def test_identical_seed_rerun_exits_zero(self, fake_bench, tmp_path):
        assert baseline.main(["record", fake_bench,
                              "--dir", str(tmp_path)]) == 0
        assert baseline.main(["compare", fake_bench,
                              "--dir", str(tmp_path)]) == 0

    def test_synthetic_regression_exits_nonzero(self, fake_bench, tmp_path,
                                                capsys):
        record(fake_bench, directory=str(tmp_path))
        path = baseline_path(str(tmp_path), fake_bench)
        payload = json.loads(path.read_text())
        # Shrink the recorded p50 by 25% so the (unchanged) current run
        # reads as a >=20% regression.
        entry = payload["metrics"]["startup_ms"]
        for key in ("p50", "p99", "mean", "ci_low", "ci_high"):
            entry[key] *= 0.75
        path.write_text(json.dumps(payload))
        exit_code = baseline.main(["compare", fake_bench,
                                   "--dir", str(tmp_path)])
        assert exit_code == 2
        out = capsys.readouterr().out
        assert "regression" in out and "startup_ms" in out

    def test_missing_baseline_exits_three(self, fake_bench, tmp_path):
        assert baseline.main(["compare", fake_bench,
                              "--dir", str(tmp_path)]) == 3

    @pytest.mark.parametrize("argv,flag", [
        (["record", "--repetitions", "0"], "--repetitions"),
        (["record", "-r", "-3"], "--repetitions"),
        (["record", "--seed", "0"], "--seed"),
        (["record", "-s", "-1"], "--seed"),
    ])
    def test_non_positive_overrides_exit_two(self, capsys, argv, flag,
                                             tmp_path):
        assert baseline.main(argv + ["--dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert flag in err and "positive" in err

    def test_unknown_bench_exits_three(self, tmp_path):
        assert baseline.main(["record", "no-such-bench",
                              "--dir", str(tmp_path)]) == 3

    def test_schema_version_mismatch_refuses(self, fake_bench, tmp_path):
        record(fake_bench, directory=str(tmp_path))
        path = baseline_path(str(tmp_path), fake_bench)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)
        assert baseline.main(["compare", fake_bench,
                              "--dir", str(tmp_path)]) == 3

    def test_baseline_records_seed_and_repetitions(self, fake_bench,
                                                   tmp_path):
        record(fake_bench, directory=str(tmp_path), repetitions=5, seed=7)
        payload, metrics = load_baseline(
            baseline_path(str(tmp_path), fake_bench))
        assert payload["seed"] == 7 and payload["repetitions"] == 5
        assert metrics["startup_ms"].n == 5

    def test_compare_reruns_at_recorded_seed(self, fake_bench, tmp_path):
        # Record at a non-default seed; compare must reproduce it (the
        # fake collector folds the seed into every value, so a re-run
        # at any other seed would regress).
        record(fake_bench, directory=str(tmp_path), seed=900)
        assert baseline.main(["compare", fake_bench,
                              "--dir", str(tmp_path)]) == 0


class TestCommittedBaselines:
    def test_repo_baselines_exist_and_parse(self):
        for name in ("fig3", "restore-sweep", "chaos"):
            path = baseline_path(baseline.DEFAULT_DIR, name)
            assert path.exists(), f"missing committed baseline {path}"
            payload, metrics = load_baseline(path)
            assert payload["bench"] == name
            assert metrics, f"{name} baseline has no metrics"

    @pytest.mark.slow
    def test_fig3_identical_seed_rerun_is_clean(self):
        regressions, missing, _ = baseline.compare("fig3")
        assert regressions == [] and missing == []
