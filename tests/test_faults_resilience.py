"""End-to-end resilience: injected faults vs the platform's defenses.

Covers the retry/fallback starter, quarantine-and-rebake, router
crash re-dispatch and re-queue, replica health checks, and the
property the chaos experiment is built on: with restores failing 100 %
of the time, a prebake start degrades to vanilla speed plus exactly
the configured retry budget.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, make_world, obs
from repro.core.manager import PrebakeManager
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faults import (
    CapacityExhausted,
    FaultPlan,
    FaultSpec,
    IMAGE_CORRUPT,
    OOM_KILL,
    REPLICA_CRASH,
    RESTORE_FAIL,
    RESTORE_HANG,
    RequestTimeout,
    RestoreFailed,
    RetryPolicy,
)
from repro.functions import make_app
from repro.sim.costmodel import DEFAULT_COST_MODEL

QUIET = DEFAULT_COST_MODEL.with_noise_sigma(0.0)


def observed_manager(seed=77):
    world = make_world(seed=seed, observe=True)
    return world.kernel, PrebakeManager(world.kernel)


def deployed_prebake_starter(kernel, manager, app, plan, **starter_kwargs):
    manager.deploy(app)
    faults.install(kernel, plan)
    return manager.starter("prebake",
                           version=manager.current_version(app.name),
                           **starter_kwargs)


class TestRetryAndFallback:
    def test_persistent_restore_failure_falls_back_to_vanilla(self):
        kernel, manager = observed_manager()
        app = make_app("noop")
        starter = deployed_prebake_starter(
            kernel, manager, app, FaultPlan.of(restore_fail=1.0))
        handle = starter.start(app)
        assert handle.technique == "vanilla"
        metrics = kernel.obs.metrics
        assert metrics.value("prebake_fallback_total") == 1
        assert metrics.value("prebake_restore_retries_total") == 2
        assert metrics.value("prebake_restore_failures_total",
                             labels={"reason": "RestoreFailed"}) == 3

    def test_fallback_disabled_raises_typed_error(self):
        kernel, manager = observed_manager()
        app = make_app("noop")
        starter = deployed_prebake_starter(
            kernel, manager, app, FaultPlan.of(restore_fail=1.0),
            fallback=False)
        with pytest.raises(RestoreFailed):
            starter.start(app)

    def test_transient_failure_recovers_within_budget(self):
        kernel, manager = observed_manager()
        app = make_app("noop")
        plan = FaultPlan(specs={RESTORE_FAIL: FaultSpec(
            RESTORE_FAIL, 1.0, max_fires=1)})
        starter = deployed_prebake_starter(kernel, manager, app, plan)
        handle = starter.start(app)
        assert handle.technique == "prebake"
        assert kernel.obs.metrics.value("prebake_fallback_total") == 0
        assert kernel.obs.metrics.value("prebake_restore_retries_total") == 1

    def test_startup_accounting_includes_retry_overhead(self):
        kernel, manager = observed_manager()
        app = make_app("noop")
        plan = FaultPlan(specs={RESTORE_FAIL: FaultSpec(
            RESTORE_FAIL, 1.0, max_fires=1)})
        starter = deployed_prebake_starter(kernel, manager, app, plan)
        before = kernel.clock.now
        handle = starter.start(app)
        # spawned_at is rewritten to the loop start, so the measured
        # start-up covers the failed attempt and its backoff too.
        assert handle.spawned_at_ms == before
        assert handle.startup_ms("ready") == kernel.clock.now - before

    def test_restore_hang_advances_clock_then_retries(self):
        kernel, manager = observed_manager()
        app = make_app("noop")
        plan = FaultPlan(specs={RESTORE_HANG: FaultSpec(
            RESTORE_HANG, 1.0, delay_ms=500.0, max_fires=1)})
        starter = deployed_prebake_starter(kernel, manager, app, plan)
        before = kernel.clock.now
        handle = starter.start(app)
        assert handle.technique == "prebake"
        assert kernel.clock.now - before >= 500.0
        assert kernel.obs.metrics.value(
            "criu_restore_failures_total", labels={"reason": "hang"}) == 1

    def test_io_slow_inflates_restore_latency_only(self):
        def startup(plan):
            world = make_world(seed=5, costs=QUIET)
            manager = PrebakeManager(world.kernel)
            app = make_app("noop")
            manager.deploy(app)
            if plan is not None:
                faults.install(world.kernel, plan)
            starter = manager.starter(
                "prebake", version=manager.current_version(app.name))
            return starter.start(app).startup_ms("ready")

        baseline = startup(None)
        slowed = startup(FaultPlan(specs={
            "io.slow": FaultSpec("io.slow", 1.0, delay_ms=40.0)}))
        assert slowed == pytest.approx(baseline + 40.0)


class TestQuarantineAndRebake:
    def test_corruption_repairs_from_chunk_store(self):
        kernel, manager = observed_manager()
        app = make_app("noop")
        plan = FaultPlan(specs={IMAGE_CORRUPT: FaultSpec(
            IMAGE_CORRUPT, 1.0, max_fires=1)})
        starter = deployed_prebake_starter(kernel, manager, app, plan)
        handle = starter.start(app)
        # Page-level corruption is repaired in place from the
        # content-addressed chunk store — no quarantine, no rebake.
        assert handle.technique == "prebake"
        assert manager.store.quarantined_count == 0
        metrics = kernel.obs.metrics
        assert metrics.value("prebake_snapshot_repaired_total") == 1
        assert metrics.value("snapshot_chunks_repaired_total") >= 1
        assert metrics.value("prebake_rebake_total") == 0
        assert metrics.value("snapshot_corruption_detected_total") == 1

    def test_corruption_quarantines_and_rebakes_without_repair(self):
        kernel, manager = observed_manager()
        app = make_app("noop")
        plan = FaultPlan(specs={IMAGE_CORRUPT: FaultSpec(
            IMAGE_CORRUPT, 1.0, max_fires=1)})
        starter = deployed_prebake_starter(kernel, manager, app, plan,
                                           repair=False)
        handle = starter.start(app)
        # With repair disabled the poisoned snapshot goes to
        # quarantine, a fresh bake replaces it, and the retry restores.
        assert handle.technique == "prebake"
        assert manager.store.quarantined_count == 1
        metrics = kernel.obs.metrics
        assert metrics.value("prebake_snapshot_quarantined_total") == 1
        assert metrics.value("prebake_rebake_total") == 1
        assert metrics.value("snapshot_corruption_detected_total") == 1


class TestRouterResilience:
    def _platform(self, seed=31, technique="vanilla", **config_kwargs):
        world = make_world(seed=seed, observe=True)
        platform = FaaSPlatform(world.kernel,
                                PlatformConfig(**config_kwargs))
        platform.register_function(lambda: make_app("noop"),
                                   start_technique=technique)
        return world.kernel, platform

    def test_replica_crash_is_redispatched(self):
        kernel, platform = self._platform()
        plan = FaultPlan(specs={REPLICA_CRASH: FaultSpec(
            REPLICA_CRASH, 1.0, max_fires=1)})
        platform.install_faults(plan)
        response = platform.invoke("noop")
        assert response.ok
        record = platform.router.stats.records[-1]
        assert record.crash_retries == 1
        assert kernel.obs.metrics.value("replica_crashes_total") == 1
        assert kernel.obs.metrics.value("router_crash_retries_total") == 1

    def test_unrecoverable_crash_storm_raises_typed_error(self):
        from repro.faults import ReplicaCrashed
        kernel, platform = self._platform(max_crash_retries=1)
        platform.install_faults(FaultPlan.of(replica_crash=1.0))
        with pytest.raises(ReplicaCrashed):
            platform.invoke("noop")

    def test_oom_kill_terminates_replica_and_records_event(self):
        kernel, platform = self._platform()
        plan = FaultPlan(specs={OOM_KILL: FaultSpec(
            OOM_KILL, 1.0, max_fires=1)})
        platform.install_faults(plan)
        response = platform.invoke("noop")
        assert response.ok  # the request itself completed first
        assert platform.replica_count("noop") == 0
        assert kernel.obs.metrics.value("replica_oom_kills_total") == 1
        # The next request cold-starts a fresh replica.
        platform.invoke("noop")
        assert platform.router.stats.cold_starts == 2

    def test_capacity_exhaustion_times_out_with_typed_error(self):
        world = make_world(seed=31, observe=True)
        platform = FaaSPlatform(world.kernel, PlatformConfig(
            requeue_backoff_ms=10.0, request_timeout_ms=50.0))
        platform.register_function(lambda: make_app("noop"),
                                   max_replicas=0)
        with pytest.raises(RequestTimeout):
            platform.invoke("noop")
        metrics = world.kernel.obs.metrics
        assert metrics.value("router_requeued_total") >= 1
        assert metrics.value("router_timeouts_total") == 1

    def test_provision_beyond_limit_raises_capacity_exhausted(self):
        _, platform = self._platform()
        platform.register_function(lambda: make_app("noop"),
                                   max_replicas=1)
        platform.deployer.provision("noop")
        with pytest.raises(CapacityExhausted) as exc_info:
            platform.deployer.provision("noop")
        assert exc_info.value.max_replicas == 1

    def test_health_check_reaps_dead_replicas(self):
        kernel, platform = self._platform()
        platform.invoke("noop")
        (replica,) = platform.deployer.replicas("noop")
        kernel.kill(replica.handle.process.pid)
        assert not replica.healthy
        assert platform.health_check() == 1
        assert platform.replica_count("noop") == 0
        assert kernel.obs.metrics.value("deployer_reaped_total") == 1

    def test_autoscaler_heals_to_min_replicas(self):
        world = make_world(seed=31, observe=True)
        from repro.faas.autoscaler import AutoscalerConfig
        platform = FaaSPlatform(world.kernel, PlatformConfig(
            autoscaler=AutoscalerConfig(min_replicas=1)))
        platform.register_function(lambda: make_app("noop"))
        platform.gc_tick()
        assert platform.replica_count("noop") == 1
        (replica,) = platform.deployer.replicas("noop")
        world.kernel.kill(replica.handle.process.pid)
        platform.gc_tick()  # reap the corpse, then heal back to the floor
        assert platform.replica_count("noop") == 1
        actions = [e.action for e in platform.autoscaler.events]
        assert "reap" in actions and "heal" in actions


class TestSpanErrorTagging:
    def test_error_exiting_span_records_exception_type(self):
        world = make_world(seed=3, observe=True)
        with pytest.raises(RestoreFailed):
            with obs.span(world.kernel, "doomed"):
                raise RestoreFailed("nope")
        (span,) = world.kernel.obs.tracer.find("doomed")
        assert span.status == "error"
        assert span.attributes["error_type"] == "RestoreFailed"
        assert "nope" in span.attributes["error"]


class TestConvergenceProperty:
    """ISSUE satellite: with 100 % restore failure, prebake start-up is
    vanilla start-up plus exactly the configured retry budget."""

    @staticmethod
    def _startup(max_attempts, technique="prebake", seed=1234):
        world = make_world(seed=seed, costs=QUIET)
        kernel = world.kernel
        manager = PrebakeManager(kernel)
        app = make_app("noop")
        if technique == "vanilla":
            return manager.starter("vanilla").start(app).startup_ms("ready")
        manager.deploy(app)
        faults.install(kernel, FaultPlan.of(restore_fail=1.0))
        starter = manager.starter(
            "prebake", version=manager.current_version(app.name),
            retry_policy=RetryPolicy(max_attempts=max_attempts))
        return starter.start(app).startup_ms("ready")

    @settings(max_examples=10, deadline=None)
    @given(max_attempts=st.integers(min_value=1, max_value=6))
    def test_prebake_converges_to_vanilla_plus_retry_budget(self, max_attempts):
        vanilla = self._startup(0, technique="vanilla")
        one_attempt = self._startup(1)
        attempt_cost = one_attempt - vanilla  # one failed restore try
        policy = RetryPolicy(max_attempts=max_attempts)
        measured = self._startup(max_attempts)
        predicted = (vanilla + max_attempts * attempt_cost
                     + policy.total_backoff_ms())
        assert measured == pytest.approx(predicted, abs=1e-6)

    def test_backoff_budget_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_ms=10.0,
                             backoff_multiplier=2.0, backoff_cap_ms=35.0)
        assert [policy.backoff_ms(i) for i in range(1, 5)] == [
            10.0, 20.0, 35.0, 35.0]
        assert policy.total_backoff_ms() == 100.0
