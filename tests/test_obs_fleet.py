"""Fleet observability plane: federation, sketches, attribution."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.fleet import (
    OUTCOME_DEGRADED,
    OUTCOME_LOCAL_HIT,
    OUTCOME_REMOTE_FETCH,
    ColdStartAttribution,
    FleetError,
    FleetRegistry,
    FleetWindowSeries,
    SpaceSavingSketch,
    bucket_width,
)
from repro.obs.metrics import Histogram, MetricsRegistry


class TestSpaceSavingSketch:
    def test_exact_under_capacity(self):
        sketch = SpaceSavingSketch(capacity=8)
        for key, n in (("a", 5), ("b", 3), ("c", 1)):
            for _ in range(n):
                sketch.offer(key)
        assert sketch.top(3) == [("a", 5.0, 0.0), ("b", 3.0, 0.0),
                                 ("c", 1.0, 0.0)]
        assert sketch.total == 9.0

    def test_eviction_inherits_error(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.offer("a", 5.0)
        sketch.offer("b", 2.0)
        sketch.offer("c", 1.0)  # evicts b (min count 2), inherits it
        (top_key, top_count, top_err), (key, count, error) = sketch.top(2)
        assert (top_key, top_count, top_err) == ("a", 5.0, 0.0)
        assert (key, count, error) == ("c", 3.0, 2.0)
        # count - error is a guaranteed lower bound on the true weight.
        assert count - error == 1.0

    def test_heavy_hitter_guaranteed_present(self):
        # Any key whose true weight exceeds total / capacity survives.
        sketch = SpaceSavingSketch(capacity=4)
        for i in range(40):
            sketch.offer(f"noise-{i}")
        for _ in range(30):
            sketch.offer("hot")
        keys = [key for key, _, _ in sketch.top(4)]
        assert "hot" in keys
        assert len(sketch) <= 4

    def test_deterministic_tie_break(self):
        results = []
        for _ in range(3):
            sketch = SpaceSavingSketch(capacity=2)
            for key in ("b", "a", "d", "c"):
                sketch.offer(key)
            results.append(sketch.top(2))
        assert results[0] == results[1] == results[2]

    def test_bad_inputs(self):
        with pytest.raises(FleetError):
            SpaceSavingSketch(capacity=0)
        with pytest.raises(FleetError):
            SpaceSavingSketch(capacity=1).offer("x", -1.0)

    def test_as_dict_sorted(self):
        sketch = SpaceSavingSketch(capacity=4)
        sketch.offer("x", 2.0)
        sketch.offer("y", 7.0)
        blob = sketch.as_dict()
        assert [e["key"] for e in blob["entries"]] == ["y", "x"]
        assert blob["total"] == 9.0


class TestFleetRegistry:
    def test_counters_sum_under_node_labels(self):
        fleet = FleetRegistry()
        fleet.node("node-0").inc("requests_total", 3.0)
        fleet.node("node-1").inc("requests_total", 4.0)
        assert fleet.fleet_value("requests_total") == 7.0
        assert fleet.per_node_value("requests_total") == {
            "node-0": 3.0, "node-1": 4.0}
        merged = fleet.merged()
        assert merged.value("requests_total", {"node": "node-0"}) == 3.0
        assert merged.value("requests_total") == 7.0

    def test_double_merge_is_idempotent(self):
        fleet = FleetRegistry()
        fleet.node("node-0").inc("requests_total", 3.0)
        first = fleet.merged().value("requests_total")
        second = fleet.merged().value("requests_total")
        assert first == second == 3.0

    def test_reattach_replaces_not_accumulates(self):
        fleet = FleetRegistry()
        registry = MetricsRegistry()
        registry.inc("requests_total", 5.0)
        fleet.attach("node-0", registry)
        fleet.attach("node-0", registry)  # re-announce, same truth
        assert fleet.fleet_value("requests_total") == 5.0

    def test_conflicting_node_label_raises(self):
        fleet = FleetRegistry()
        impostor = MetricsRegistry()
        impostor.inc("requests_total", 1.0, labels={"node": "node-9"})
        with pytest.raises(FleetError):
            fleet.attach("node-0", impostor)
        # The node's own label is fine.
        honest = MetricsRegistry()
        honest.inc("requests_total", 1.0, labels={"node": "node-0"})
        fleet.attach("node-0", honest)

    def test_empty_node_id_raises(self):
        with pytest.raises(FleetError):
            FleetRegistry().attach("", MetricsRegistry())

    def test_fleet_histogram_merges_counts(self):
        fleet = FleetRegistry()
        for node, values in (("node-0", [1.0, 2.0]), ("node-1", [3.0])):
            for value in values:
                fleet.node(node).observe("latency_ms", value)
        histogram = fleet.fleet_histogram("latency_ms")
        assert histogram is not None
        assert histogram.count == 3
        assert histogram.min_value == 1.0
        assert histogram.max_value == 3.0
        assert fleet.fleet_quantile("latency_ms", 1.0) == 3.0

    def test_fleet_histogram_does_not_alias_node_state(self):
        fleet = FleetRegistry()
        fleet.node("node-0").observe("latency_ms", 1.0)
        merged = fleet.fleet_histogram("latency_ms")
        merged.observe(99.0)
        assert fleet.node("node-0").histogram("latency_ms").count == 1

    def test_exemplars_survive_federation(self):
        fleet = FleetRegistry()
        fleet.node("node-0").observe("latency_ms", 4.2, exemplar="t-0042")
        merged = fleet.merged().histogram(
            "latency_ms", {"node": "node-0"})
        assert ("t-0042", 4.2) in merged.exemplars.values()
        combined = fleet.fleet_histogram("latency_ms")
        assert ("t-0042", 4.2) in combined.exemplars.values()

    def test_no_data_reads(self):
        fleet = FleetRegistry()
        assert fleet.fleet_histogram("nope") is None
        assert fleet.fleet_quantile("nope", 0.99) == 0.0
        assert fleet.fleet_value("nope") == 0.0

    @given(
        samples=st.lists(
            st.floats(min_value=0.01, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200),
        nodes=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_merged_p99_within_one_bucket_width(self, samples, nodes):
        # The federation contract: a fleet quantile read off merged
        # histograms lands within one log-linear bucket width of the
        # quantile over the concatenated raw samples.
        fleet = FleetRegistry()
        for i, value in enumerate(samples):
            fleet.node(f"node-{i % nodes}").observe("latency_ms", value)
        single = Histogram()
        for value in samples:
            single.observe(value)
        for q in (0.5, 0.99):
            merged_q = fleet.fleet_quantile("latency_ms", q)
            # Exact merge: identical to one giant histogram.
            assert merged_q == single.quantile(q)
            ordered = sorted(samples)
            exact = ordered[math.ceil(q * len(ordered)) - 1]
            assert abs(merged_q - exact) <= bucket_width(exact)


class TestFleetWindowSeries:
    def test_windows_close_on_boundary(self):
        series = FleetWindowSeries(window_ms=100.0)
        series.observe("node-0", 10.0, 5.0)
        series.observe("node-1", 20.0, 7.0)
        assert series.points == []  # window still open
        series.observe("node-0", 150.0, 9.0)
        assert len(series.points) == 1
        point = series.points[0]
        assert point.start_ms == 0.0
        assert point.count == 2
        assert point.max_value == 7.0
        series.flush()
        assert len(series.points) == 2
        assert series.points[1].start_ms == 100.0

    def test_empty_gap_windows_emit_nothing(self):
        series = FleetWindowSeries(window_ms=100.0)
        series.observe("node-0", 10.0, 1.0)
        series.observe("node-0", 950.0, 1.0)
        series.flush()
        assert [p.start_ms for p in series.points] == [0.0, 900.0]

    def test_bounded_with_eviction_count(self):
        series = FleetWindowSeries(window_ms=10.0, capacity=3)
        for i in range(8):
            series.observe("node-0", i * 10.0, 1.0)
        series.flush()
        assert len(series.points) == 3
        assert series.evicted == 5
        assert [p.start_ms for p in series.points] == [50.0, 60.0, 70.0]

    def test_bad_inputs(self):
        with pytest.raises(FleetError):
            FleetWindowSeries(window_ms=0.0)
        with pytest.raises(FleetError):
            FleetWindowSeries(capacity=0)


class TestColdStartAttribution:
    @staticmethod
    def record_one(attribution, function="fn-000", node="node-0",
                   outcome=OUTCOME_LOCAL_HIT,
                   phases=None):
        phases = phases or {"clone": 0.5, "spawn": 2.0, "restore": 40.0}
        total = 0.0
        for value in phases.values():
            total += value
        attribution.record(function, node, outcome, phases, total)
        return total

    def test_phase_sum_invariant_enforced(self):
        attribution = ColdStartAttribution()
        with pytest.raises(FleetError):
            attribution.record("fn", "node-0", OUTCOME_LOCAL_HIT,
                               {"clone": 1.0, "restore": 2.0}, 4.0)
        # Exact sums (same accumulation order) always pass.
        self.record_one(attribution)
        assert len(attribution) == 1

    def test_unknown_outcome_rejected(self):
        with pytest.raises(FleetError):
            ColdStartAttribution().record(
                "fn", "node-0", "cache-miss", {"restore": 1.0}, 1.0)

    def test_cells_accumulate_and_rank(self):
        attribution = ColdStartAttribution()
        self.record_one(attribution, function="fn-001",
                        phases={"restore": 100.0})
        self.record_one(attribution, function="fn-000")
        self.record_one(attribution, function="fn-000")
        cells = attribution.cells()
        assert [c.function for c in cells] == ["fn-001", "fn-000"]
        assert cells[1].count == 2
        assert cells[1].dominant_phase() == "restore"
        assert cells[0].mean_ms == 100.0

    def test_blame_table_and_folded_stacks(self):
        attribution = ColdStartAttribution()
        self.record_one(attribution, outcome=OUTCOME_DEGRADED)
        self.record_one(attribution, node="node-1",
                        outcome=OUTCOME_REMOTE_FETCH)
        table = attribution.blame_table()
        assert "dominant phase" in table
        assert "degraded" in table
        folded = attribution.folded_lines()
        assert "fleet;node-0;fn-000;degraded;restore 40000" in folded
        for line in folded:
            stack, _, micros = line.rpartition(" ")
            assert stack and int(micros) > 0

    def test_round_trips_through_dict(self):
        attribution = ColdStartAttribution()
        self.record_one(attribution)
        self.record_one(attribution, outcome=OUTCOME_REMOTE_FETCH)
        clone = ColdStartAttribution.from_dict(attribution.as_dict())
        assert clone.as_dict() == attribution.as_dict()
        assert clone.total_ms == attribution.total_ms


class TestBucketWidth:
    def test_nonpositive_is_zero(self):
        assert bucket_width(0.0) == 0.0
        assert bucket_width(-1.0) == 0.0

    def test_scales_with_magnitude(self):
        assert bucket_width(100.0) == pytest.approx(64.0 / 32)
        assert bucket_width(1.0) < bucket_width(1000.0)
