"""Tests for the event queue and signals."""

import pytest

from repro.sim.events import Event, EventQueue, Signal


class TestEventQueue:
    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fifo(self):
        queue = EventQueue()
        fired = []
        for name in "abcde":
            queue.push(5.0, lambda n=name: fired.append(n))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == list("abcde")

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: pytest.fail("cancelled event ran"))
        queue.push(2.0, lambda: None)
        event.cancel()
        popped = queue.pop()
        assert popped is not None
        assert popped.time == 2.0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(2.0, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert keep.cancelled is False

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 4.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None


class TestSignal:
    def test_fire_wakes_all_waiters(self):
        signal = Signal("test")
        woken = []
        signal.wait(lambda p: woken.append(("a", p)))
        signal.wait(lambda p: woken.append(("b", p)))
        count = signal.fire("payload")
        assert count == 2
        assert woken == [("a", "payload"), ("b", "payload")]

    def test_waiters_fire_once_only(self):
        signal = Signal()
        woken = []
        signal.wait(lambda p: woken.append(p))
        signal.fire(1)
        signal.fire(2)
        assert woken == [1]

    def test_waiter_registered_after_fire_waits_for_next(self):
        signal = Signal()
        signal.fire("early")
        woken = []
        signal.wait(lambda p: woken.append(p))
        assert woken == []
        signal.fire("late")
        assert woken == ["late"]

    def test_fire_count_and_payload_tracked(self):
        signal = Signal()
        signal.fire("x")
        signal.fire("y")
        assert signal.fire_count == 2
        assert signal.last_payload == "y"


class TestQueueAccounting:
    """O(1) live count and tombstone compaction (the __len__ fix)."""

    def test_len_is_exact_after_cancels(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        assert len(queue) == 10
        for event in events[::2]:
            event.cancel()
        assert len(queue) == 5
        # double-cancel must not double-count
        events[0].cancel()
        assert len(queue) == 5

    def test_compaction_purges_tombstones(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(100)]
        # cancelling > half the live events triggers compaction, which
        # bounds the heap: tombstones never outnumber live events
        for event in events[:60]:
            event.cancel()
        assert len(queue) == 40
        assert len(queue._heap) < 100
        dead = sum(1 for e in queue._heap if e.cancelled)
        assert dead <= len(queue)

    def test_pop_order_survives_compaction(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda i=i: i, label=str(i))
                  for i in range(20)]
        for event in events[:12]:
            event.cancel()
        order = []
        while queue:
            order.append(queue.pop().time)
        assert order == [float(i) for i in range(12, 20)]

    def test_push_many_matches_sequential_pushes(self):
        a, b = EventQueue(), EventQueue()
        entries = [(5.0, lambda: 1), (1.0, lambda: 2), (5.0, lambda: 3),
                   (0.0, lambda: 4)]
        for time, callback in entries:
            a.push(time, callback)
        b.push_many(entries)
        while a:
            ea, eb = a.pop(), b.pop()
            # FIFO among equal timestamps: seqs assigned in input order
            assert (ea.time, ea.callback()) == (eb.time, eb.callback())
        assert not b


class TestSignalReentrancy:
    def test_recursive_fire_of_same_signal(self):
        """A waiter that re-fires its own signal must not corrupt the
        waiter list: the inner fire sees only waiters registered after
        the outer snapshot-and-clear."""
        signal = Signal("reentrant")
        order = []

        def outer(payload):
            order.append(("outer", payload))
            signal.wait(lambda p: order.append(("inner", p)))
            signal.fire("from-outer")

        signal.wait(outer)
        woken = signal.fire("first")
        assert woken == 1
        assert order == [("outer", "first"), ("inner", "from-outer")]
        # counters reflect the innermost completed firing
        assert signal.fire_count == 2
        assert signal.last_payload == "from-outer"
        # the waiter list is clean: a fresh wait fires exactly once
        relit = []
        signal.wait(relit.append)
        assert signal.fire("again") == 1
        assert relit == ["again"]
