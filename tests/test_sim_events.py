"""Tests for the event queue and signals."""

import pytest

from repro.sim.events import Event, EventQueue, Signal


class TestEventQueue:
    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fifo(self):
        queue = EventQueue()
        fired = []
        for name in "abcde":
            queue.push(5.0, lambda n=name: fired.append(n))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == list("abcde")

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: pytest.fail("cancelled event ran"))
        queue.push(2.0, lambda: None)
        event.cancel()
        popped = queue.pop()
        assert popped is not None
        assert popped.time == 2.0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(2.0, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert keep.cancelled is False

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 4.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None


class TestSignal:
    def test_fire_wakes_all_waiters(self):
        signal = Signal("test")
        woken = []
        signal.wait(lambda p: woken.append(("a", p)))
        signal.wait(lambda p: woken.append(("b", p)))
        count = signal.fire("payload")
        assert count == 2
        assert woken == [("a", "payload"), ("b", "payload")]

    def test_waiters_fire_once_only(self):
        signal = Signal()
        woken = []
        signal.wait(lambda p: woken.append(p))
        signal.fire(1)
        signal.fire(2)
        assert woken == [1]

    def test_waiter_registered_after_fire_waits_for_next(self):
        signal = Signal()
        signal.fire("early")
        woken = []
        signal.wait(lambda p: woken.append(p))
        assert woken == []
        signal.fire("late")
        assert woken == ["late"]

    def test_fire_count_and_payload_tracked(self):
        signal = Signal()
        signal.fire("x")
        signal.fire("y")
        assert signal.fire_count == 2
        assert signal.last_payload == "y"
