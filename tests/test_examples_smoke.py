"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests run each one in a
subprocess with reduced repetitions so a broken example fails CI, not a
reader.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", []),
    ("openfaas_demo.py", []),
    ("warmup_study.py", ["3"]),
    ("migration_demo.py", []),
]


def run_example(name, args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    @pytest.mark.parametrize("name,args", FAST_EXAMPLES,
                             ids=[n for n, _ in FAST_EXAMPLES])
    def test_example_runs(self, name, args):
        result = run_example(name, args)
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip()

    def test_quickstart_reports_paper_improvement(self):
        result = run_example("quickstart.py", [])
        assert "47%" in result.stdout
        assert "<h1>Hello</h1>" in result.stdout

    @pytest.mark.slow
    @pytest.mark.skipif(not hasattr(os, "fork"), reason="POSIX only")
    def test_real_process_demo_runs(self):
        result = run_example("real_process_demo.py", ["2"], timeout=300)
        assert result.returncode == 0, result.stderr[-2000:]
        assert "zygote" in result.stdout

    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart.py", "warmup_study.py", "openfaas_demo.py",
                "workload_study.py", "migration_demo.py",
                "bake_farm_demo.py", "real_process_demo.py"} <= names
