"""Property-based tests: dump → restore is a faithful round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_world
from repro.criu.checkpoint import CheckpointEngine
from repro.criu.restore import RestoreEngine
from repro.core.policy import AfterReady, AfterWarmup
from repro.core.manager import PrebakeManager
from repro.functions import make_app
from repro.osproc.memory import PAGE_SIZE, VMAKind
from repro.runtime.base import Request


@st.composite
def memory_layouts(draw):
    """A random process memory layout: list of (kind, pages, resident)."""
    n = draw(st.integers(min_value=1, max_value=6))
    layout = []
    for i in range(n):
        pages = draw(st.integers(min_value=1, max_value=64))
        resident = draw(st.integers(min_value=0, max_value=pages))
        kind = draw(st.sampled_from([VMAKind.ANON, VMAKind.STACK,
                                     VMAKind.METASPACE, VMAKind.CODE]))
        layout.append((kind, pages, resident))
    return layout


class TestRoundTripProperties:
    @given(layout=memory_layouts(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_memory_structure_preserved(self, layout, seed):
        world = make_world(seed=seed)
        kernel = world.kernel
        proc = kernel.clone(kernel.init_process, comm="subject")
        for i, (kind, pages, resident) in enumerate(layout):
            vma = proc.address_space.mmap(
                pages * PAGE_SIZE, kind, label=f"vma-{i}"
            )
            vma.touch_range(0, resident, content_tag=f"tag-{i}")
        expected = [
            (v.label, v.kind, v.length, sorted(v.pages))
            for v in proc.address_space.vmas
        ]
        image = CheckpointEngine(kernel).dump(proc, leave_running=False)
        restored = RestoreEngine(kernel).restore(image)
        actual = [
            (v.label, v.kind, v.length, sorted(v.pages))
            for v in restored.address_space.vmas
        ]
        assert actual == expected

    @given(seed=st.integers(min_value=0, max_value=2**16),
           warm_requests=st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_runtime_state_preserved(self, seed, warm_requests):
        world = make_world(seed=seed)
        manager = PrebakeManager(world.kernel)
        app = make_app("synthetic-small")
        policy = AfterWarmup(warm_requests) if warm_requests else AfterReady()
        manager.deploy(app, policy=policy)
        handle = manager.start_replica(app, technique="prebake", policy=policy)
        runtime = handle.runtime
        assert runtime.ready
        assert runtime.requests_served == warm_requests
        expected_loaded = len(app.classes) if warm_requests else 0
        assert runtime.loaded_classes == expected_loaded
        # The restored replica still serves correctly.
        response = handle.invoke(Request())
        assert response.ok

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_double_roundtrip_stable(self, seed):
        """Dump(restore(dump(p))) produces an identical structure."""
        world = make_world(seed=seed)
        kernel = world.kernel
        proc = kernel.clone(kernel.init_process, comm="subject")
        proc.address_space.grow_anon("heap", 1.5, content_tag="h")
        dump = CheckpointEngine(kernel)
        restore = RestoreEngine(kernel)
        image1 = dump.dump(proc, leave_running=False)
        restored1 = restore.restore(image1)
        image2 = dump.dump(restored1, leave_running=False)
        assert image2.resident_pages == image1.resident_pages
        assert len(image2.vmas) == len(image1.vmas)
        restored2 = restore.restore(image2)
        assert restored2.address_space.rss_bytes == image1.pages_bytes
