"""Tests for seeded random streams."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RandomStreams, _derive_seed


class TestDerivation:
    def test_same_inputs_same_seed(self):
        assert _derive_seed(1, "a") == _derive_seed(1, "a")

    def test_different_names_different_seeds(self):
        assert _derive_seed(1, "a") != _derive_seed(1, "b")

    def test_different_masters_different_seeds(self):
        assert _derive_seed(1, "a") != _derive_seed(2, "a")


class TestStreams:
    def test_streams_reproducible_across_instances(self):
        a = RandomStreams(seed=99).get("x").random()
        b = RandomStreams(seed=99).get("x").random()
        assert a == b

    def test_named_streams_independent(self):
        streams = RandomStreams(seed=0)
        first = [streams.get("a").random() for _ in range(5)]
        # Draining another stream must not disturb "a".
        streams2 = RandomStreams(seed=0)
        for _ in range(100):
            streams2.get("b").random()
        second = [streams2.get("a").random() for _ in range(5)]
        assert first == second

    def test_get_returns_same_stream_object(self):
        streams = RandomStreams(seed=3)
        assert streams.get("s") is streams.get("s")

    def test_fork_creates_distinct_family(self):
        base = RandomStreams(seed=5)
        fork = base.fork("child")
        assert fork.seed != base.seed
        assert fork.get("x").random() != base.get("x").random()

    def test_fork_reproducible(self):
        a = RandomStreams(seed=5).fork("child").get("x").random()
        b = RandomStreams(seed=5).fork("child").get("x").random()
        assert a == b


class TestDistributions:
    def test_lognormal_jitter_zero_median(self):
        assert RandomStreams(seed=1).lognormal_jitter("n", 0.0, 0.1) == 0.0

    def test_lognormal_jitter_positive(self):
        streams = RandomStreams(seed=1)
        for _ in range(100):
            assert streams.lognormal_jitter("n", 10.0, 0.05) > 0

    def test_lognormal_jitter_centered_on_median(self):
        streams = RandomStreams(seed=1)
        draws = sorted(
            streams.lognormal_jitter("n", 100.0, 0.02) for _ in range(2001)
        )
        sample_median = draws[len(draws) // 2]
        assert abs(sample_median - 100.0) < 1.0

    @given(median=st.floats(min_value=0.01, max_value=1e5),
           sigma=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=50)
    def test_lognormal_jitter_finite(self, median, sigma):
        value = RandomStreams(seed=2).lognormal_jitter("x", median, sigma)
        assert math.isfinite(value) and value > 0

    def test_triangular_within_bounds(self):
        streams = RandomStreams(seed=4)
        for _ in range(100):
            v = streams.triangular("t", 1.0, 5.0, 2.0)
            assert 1.0 <= v <= 5.0

    def test_choice_picks_from_options(self):
        streams = RandomStreams(seed=6)
        options = ["a", "b", "c"]
        seen = {streams.choice("c", options) for _ in range(100)}
        assert seen <= set(options)
        assert len(seen) > 1
