"""Postmortem bundles: sealing, persistence, and rendering."""

import json

from repro import faults, make_world, obs
from repro.faults.errors import PlatformError
from repro.faults.model import FaultPlan
from repro.obs.postmortem import (
    PostmortemBundle,
    PostmortemCollector,
    load_bundles,
)


def _incident_world(seed=13):
    """A world with the whole incident stack installed and one traced
    cold start on the books."""
    kernel = make_world(seed=seed, observe=True).kernel
    obs.install_flight(kernel)
    obs.enable_timeseries(kernel, window_ms=100.0)
    obs.enable_anomaly(kernel, window_ms=100.0, latency_warmup=3)
    faults.install(kernel, FaultPlan())
    with obs.span(kernel, "router.route", function="markdown") as span:
        obs.record(kernel, "request.admitted", function="markdown",
                   request_id=1)
        obs.observe(kernel, "router_cold_start_wait_ms", 50.0)
        obs.count(kernel, "criu_restore_total")
    kernel.clock.advance(250.0)
    return kernel, span.trace_id


class TestSealing:
    def test_on_error_bundle_captures_world_state(self):
        kernel, trace_id = _incident_world()
        collector = PostmortemCollector(kernel, seed=13, label="unit",
                                        recipe={"experiment": "unit"})
        bundle = collector.on_error(PlatformError("restore exhausted"),
                                    trace_id=trace_id)
        assert bundle.kind == "error"
        assert bundle.trace_id == trace_id
        assert bundle.sealed_at_ms == kernel.clock.now
        assert bundle.reason["error_type"] == "PlatformError"
        payload = bundle.payload
        assert payload["flight"]["events"]          # tape tail present
        spans = payload["trace"]["spans"]
        assert any(s["name"] == "router.route" for s in spans)
        assert "router_cold_start_wait_ms" in \
            payload["metrics_windows"]["series"]
        assert any(s["slo"] == "cold-start-p99" for s in payload["slo"])
        # The live schedule digest was stamped into the replay recipe.
        assert bundle.replay["fault_schedule_digest"] == \
            bundle.fault_digest == kernel.faults.schedule_digest()
        assert bundle.replay["seed"] == 13

    def test_on_anomaly_bundle_carries_the_event(self):
        kernel, _ = _incident_world()
        monitor = kernel.obs.anomaly
        collector = PostmortemCollector(kernel, seed=13, label="unit")
        monitor.subscribe(collector.on_anomaly)
        for _ in range(3):
            obs.observe(kernel, "router_cold_start_wait_ms", 50.0)
        obs.observe(kernel, "router_cold_start_wait_ms", 500.0)
        (bundle,) = collector.bundles
        assert bundle.kind == "anomaly"
        (anomaly,) = bundle.anomalies
        assert anomaly.detector == "cold-start-latency"
        assert anomaly.value == 500.0

    def test_max_bundles_suppresses_but_counts(self):
        kernel, trace_id = _incident_world()
        collector = PostmortemCollector(kernel, label="unit", max_bundles=2)
        for _ in range(5):
            collector.on_error(PlatformError("boom"), trace_id=trace_id)
        assert len(collector.bundles) == 2
        assert collector.suppressed == 3


class TestPersistence:
    def test_write_load_round_trip(self, tmp_path):
        kernel, trace_id = _incident_world()
        collector = PostmortemCollector(kernel, seed=13, label="unit",
                                        out_dir=tmp_path)
        collector.on_error(PlatformError("boom"), trace_id=trace_id)
        (path,) = collector.paths
        assert path.name == "postmortem-unit-001.json"
        loaded = PostmortemBundle.load(path)
        assert loaded.payload == collector.bundles[0].payload
        assert json.loads(loaded.to_json()) == loaded.payload

    def test_load_bundles_directory_order(self, tmp_path):
        kernel, trace_id = _incident_world()
        collector = PostmortemCollector(kernel, label="unit")
        collector.on_error(PlatformError("one"), trace_id=trace_id)
        collector.on_error(PlatformError("two"), trace_id=trace_id)
        paths = collector.write_all(tmp_path)
        assert len(paths) == 2
        loaded = load_bundles(tmp_path)
        assert [b.payload["bundle_seq"] for b in loaded] == [1, 2]
        empty = tmp_path / "empty-subdir"
        empty.mkdir()
        assert load_bundles(empty) == []


class TestRendering:
    def test_render_sections(self):
        kernel, trace_id = _incident_world()
        collector = PostmortemCollector(kernel, seed=13, label="unit",
                                        recipe={"experiment": "unit"})
        bundle = collector.on_error(PlatformError("boom"), trace_id=trace_id)
        text = bundle.render(flight_tail=5)
        assert "POSTMORTEM" in text
        assert "REPLAY RECIPE" in text
        assert "SLO BURN AT SEAL" in text
        assert "FAULTS" in text
        assert "FLIGHT TAPE" in text
        assert "INCIDENT SPAN TREE" in text
        assert "router.route" in text

    def test_cli_renders_bundle_directory(self, tmp_path, capsys):
        from repro.obs.cli import main as obs_cli_main

        kernel, trace_id = _incident_world()
        collector = PostmortemCollector(kernel, label="unit",
                                        out_dir=tmp_path)
        collector.on_error(PlatformError("boom"), trace_id=trace_id)
        assert obs_cli_main(["postmortem", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "POSTMORTEM" in out and "REPLAY RECIPE" in out

    def test_cli_replay_flag_prints_recipes(self, tmp_path, capsys):
        from repro.obs.cli import main as obs_cli_main

        kernel, trace_id = _incident_world()
        collector = PostmortemCollector(kernel, seed=13, label="unit",
                                        recipe={"experiment": "unit"},
                                        out_dir=tmp_path)
        collector.on_error(PlatformError("boom"), trace_id=trace_id)
        assert obs_cli_main(["postmortem", str(tmp_path), "--replay"]) == 0
        (line,) = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line)["experiment"] == "unit"

    def test_cli_missing_directory_fails_cleanly(self, tmp_path):
        from repro.obs.cli import main as obs_cli_main

        empty = tmp_path / "none"
        empty.mkdir()
        assert obs_cli_main(["postmortem", str(empty)]) == 1
        assert obs_cli_main(
            ["postmortem", str(tmp_path / "missing.json")]) == 2
