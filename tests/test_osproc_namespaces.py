"""Tests for the namespace model."""

import pytest

from repro.osproc.namespaces import Namespace, NamespaceKind, NamespaceSet


class TestNamespaceSet:
    def test_fresh_set_covers_all_kinds(self):
        ns = NamespaceSet()
        for kind in NamespaceKind:
            assert ns.get(kind).kind is kind

    def test_missing_kind_rejected(self):
        partial = {NamespaceKind.PID: Namespace.fresh(NamespaceKind.PID)}
        with pytest.raises(ValueError, match="missing kinds"):
            NamespaceSet(partial)

    def test_clone_shares_unlisted_kinds(self):
        parent = NamespaceSet()
        child = parent.clone_with_new(NamespaceKind.PID)
        assert child.get(NamespaceKind.PID) != parent.get(NamespaceKind.PID)
        assert child.get(NamespaceKind.NET) == parent.get(NamespaceKind.NET)

    def test_clone_all_new_is_fully_distinct(self):
        parent = NamespaceSet()
        child = parent.clone_with_new(*NamespaceKind)
        for kind in NamespaceKind:
            assert child.get(kind) != parent.get(kind)

    def test_ids_serializable_roundtrip(self):
        ns = NamespaceSet()
        ids = ns.ids()
        assert set(ids) == {k.value for k in NamespaceKind}
        assert ns.matches(ids)
        assert not ns.matches({**ids, "pid": -1})

    def test_equality_and_hash(self):
        ns = NamespaceSet()
        same = NamespaceSet({k: ns.get(k) for k in NamespaceKind})
        other = NamespaceSet()
        assert ns == same
        assert hash(ns) == hash(same)
        assert ns != other

    def test_namespace_str_format(self):
        ns = Namespace.fresh(NamespaceKind.MNT)
        assert str(ns) == f"mnt:[{ns.ns_id}]"

    def test_fresh_ids_unique(self):
        ids = {Namespace.fresh(NamespaceKind.PID).ns_id for _ in range(100)}
        assert len(ids) == 100
