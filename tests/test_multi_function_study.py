"""Tests for the multi-function trace study and gateway latency digest."""

import pytest

from repro import make_world
from repro.bench.platform_study import run_multi_function_study
from repro.bench.traces import TraceEvent, synthesize_workload
from repro.faas.openfaas.stack import make_openfaas_stack
from repro.functions import NoopFunction


class TestMultiFunctionStudy:
    def test_hot_function_rarely_cold(self):
        trace = synthesize_workload(
            ["markdown", "noop"], duration_ms=300_000,
            total_rate_per_s=4.0, bursty_fraction=0.0, seed=9)
        results = run_multi_function_study(trace, idle_timeout_ms=60_000,
                                           seed=9)
        by_name = {r.strategy.split("(")[0]: r for r in results}
        hot = by_name["markdown"]  # rank 0 → most traffic
        cold = by_name["noop"]
        assert hot.requests > cold.requests
        assert hot.cold_fraction <= cold.cold_fraction

    def test_mixed_techniques(self):
        trace = [TraceEvent(0.0, "noop"), TraceEvent(100_000.0, "noop"),
                 TraceEvent(0.0, "markdown"), TraceEvent(100_000.0, "markdown")]
        results = run_multi_function_study(
            trace,
            techniques={"noop": "vanilla", "markdown": "prebake"},
            idle_timeout_ms=10_000.0,
        )
        by_name = {r.strategy: r for r in results}
        vanilla = by_name["noop(vanilla)"]
        prebake = by_name["markdown(prebake)"]
        # Both cold-start twice (timeout expires), prebake waits less.
        assert vanilla.cold_starts == prebake.cold_starts == 2
        assert prebake.latency_p(0.99) < vanilla.latency_p(0.99)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            run_multi_function_study([])


class TestGatewayLatencyDigest:
    def test_summary_after_invocations(self, kernel):
        stack = make_openfaas_stack(kernel)
        stack.cli.new("noop", "java8", NoopFunction)
        stack.cli.up("noop")
        for _ in range(20):
            stack.gateway.invoke("noop")
        summary = stack.gateway.latency_summary("noop")
        assert summary["count"] == 20
        assert 0.3 < summary["p50"] < 2.0  # noop service ≈ 0.9ms

    def test_summary_unknown_service(self, kernel):
        from repro.faas.openfaas.gateway import GatewayError
        stack = make_openfaas_stack(kernel)
        with pytest.raises(GatewayError):
            stack.gateway.latency_summary("ghost")
