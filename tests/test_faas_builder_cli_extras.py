"""Tests for the Function Builder, gateway HTTP endpoint, faas-cli
list/describe, and the Hodges–Lehmann estimator."""

import random

import pytest

from repro.bench.stats import hodges_lehmann, median
from repro.core.bake import Prebaker
from repro.core.policy import AfterWarmup
from repro.faas.builder import FunctionBuilder
from repro.faas.http import parse_response
from repro.faas.openfaas.stack import make_openfaas_stack
from repro.faas.registry import FunctionMetadata
from repro.functions import MarkdownFunction, NoopFunction


class TestFunctionBuilder:
    def _builder(self, kernel):
        return FunctionBuilder(kernel, Prebaker(kernel))

    def _meta(self, technique="vanilla", policy=None):
        return FunctionMetadata(
            name="markdown", runtime_kind="jvm", version=1,
            app_factory=MarkdownFunction,
            start_technique=technique,
            snapshot_policy=policy or AfterWarmup(1),
        )

    def test_vanilla_build_produces_artifact_only(self, kernel):
        builder = self._builder(kernel)
        result = builder.build(self._meta("vanilla"))
        assert not result.prebaked
        assert result.artifact_bytes > 0
        assert kernel.fs.exists(result.artifact_path)

    def test_prebake_build_bakes(self, kernel):
        builder = self._builder(kernel)
        result = builder.build(self._meta("prebake"))
        assert result.prebaked
        assert result.bake_report.image.warm is True
        assert builder.prebaker.store.contains(result.bake_report.key)

    def test_build_updates_metadata(self, kernel):
        builder = self._builder(kernel)
        meta = self._meta()
        builder.build(meta)
        assert meta.artifact_path
        assert meta.artifact_bytes > 0

    def test_build_charges_time(self, kernel):
        builder = self._builder(kernel)
        before = kernel.clock.now
        result = builder.build(self._meta())
        assert kernel.clock.now - before == pytest.approx(
            result.build_duration_ms)
        assert result.build_duration_ms > 100.0


class TestGatewayHttp:
    @pytest.fixture
    def stack(self, kernel):
        stack = make_openfaas_stack(kernel)
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        stack.cli.up("md")
        return stack

    def test_http_roundtrip(self, stack):
        wire = (b"POST /function/md HTTP/1.1\r\n"
                b"Content-Length: 8\r\n\r\n**bold**")
        out = stack.gateway.invoke_http("md", wire)
        response = parse_response(out)
        assert response.status == 200
        assert b"<strong>bold</strong>" in response.body

    def test_malformed_request_becomes_400(self, stack):
        out = stack.gateway.invoke_http("md", b"NOT HTTP AT ALL")
        assert parse_response(out).status == 400

    def test_unknown_service_becomes_404(self, stack):
        wire = b"GET / HTTP/1.1\r\n\r\n"
        out = stack.gateway.invoke_http("ghost", wire)
        assert parse_response(out).status == 404


class TestFaasCliListDescribe:
    def test_list_empty(self, kernel):
        stack = make_openfaas_stack(kernel)
        assert stack.cli.list() == []

    def test_list_after_deploy(self, kernel):
        stack = make_openfaas_stack(kernel)
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        stack.cli.up("md", initial_replicas=2)
        rows = stack.cli.list()
        assert len(rows) == 1
        assert rows[0]["name"] == "md"
        assert rows[0]["replicas"] == 2
        assert rows[0]["prebaked"] is True

    def test_describe_lifecycle_stages(self, kernel):
        stack = make_openfaas_stack(kernel)
        stack.cli.new("noop", "java8", NoopFunction)
        info = stack.cli.describe("noop")
        assert info["built"] is False and info["deployed"] is False
        stack.cli.build("noop")
        info = stack.cli.describe("noop")
        assert info["built"] is True and info["pushed"] is False
        stack.cli.push("noop")
        stack.cli.deploy("noop")
        info = stack.cli.describe("noop")
        assert info["deployed"] is True
        assert info["snapshot_key"] is None

    def test_describe_snapshot_key(self, kernel):
        stack = make_openfaas_stack(kernel)
        stack.cli.new("md", "java8-criu", MarkdownFunction)
        stack.cli.build("md")
        info = stack.cli.describe("md")
        assert "markdown@v1" in info["snapshot_key"]


class TestHodgesLehmann:
    def test_matches_brute_force_median_of_diffs(self):
        a = [1.0, 5.0, 9.0]
        b = [2.0, 3.0]
        expected = median([x - y for x in a for y in b])
        assert hodges_lehmann(a, b) == expected

    def test_pure_shift_recovered(self):
        rng = random.Random(3)
        base = [rng.gauss(50, 4) for _ in range(80)]
        shifted = [x + 7.5 for x in base]
        assert hodges_lehmann(shifted, base) == pytest.approx(7.5, abs=0.01)

    def test_noop_paper_difference(self):
        """The paper's NOOP median difference is ≈ [40.35, 42.29] ms."""
        from repro.bench.harness import run_startup_experiment
        vanilla = run_startup_experiment("noop", "vanilla",
                                         repetitions=25, seed=13)
        prebake = run_startup_experiment("noop", "prebake",
                                         repetitions=25, seed=13)
        shift = hodges_lehmann(vanilla.values, prebake.values)
        assert shift == pytest.approx(41.3, abs=2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hodges_lehmann([], [1.0])
