"""Tests for the from-scratch markdown renderer."""

import pytest

from repro.functions.markdown_engine import render, render_document
from repro.functions.markdown_engine.blocks import parse_blocks
from repro.functions.markdown_engine.inline import escape_html, render_inline
from repro.functions.markdown_engine.nodes import (
    CodeBlock,
    Heading,
    ListBlock,
    Paragraph,
)


class TestHeadings:
    @pytest.mark.parametrize("level", range(1, 7))
    def test_atx_levels(self, level):
        assert render("#" * level + " Title") == f"<h{level}>Title</h{level}>\n"

    def test_seven_hashes_is_not_heading(self):
        assert "<h7>" not in render("####### nope")

    def test_trailing_hashes_stripped(self):
        assert render("## Title ##") == "<h2>Title</h2>\n"

    def test_setext_h1(self):
        assert render("Title\n=====") == "<h1>Title</h1>\n"

    def test_setext_h2(self):
        assert render("Title\n-----") == "<h2>Title</h2>\n"

    def test_heading_with_inline_markup(self):
        assert render("# A *b* c") == "<h1>A <em>b</em> c</h1>\n"


class TestParagraphs:
    def test_single_paragraph(self):
        assert render("hello world") == "<p>hello world</p>\n"

    def test_multiline_paragraph_joined(self):
        assert render("line one\nline two") == "<p>line one line two</p>\n"

    def test_blank_line_splits_paragraphs(self):
        html = render("one\n\ntwo")
        assert html == "<p>one</p>\n<p>two</p>\n"

    def test_hard_break(self):
        assert "<br />" in render("one  \ntwo")


class TestCodeBlocks:
    def test_fenced_block(self):
        html = render("```\ncode here\n```")
        assert html == "<pre><code>code here\n</code></pre>\n"

    def test_fenced_with_language(self):
        html = render("```python\nx = 1\n```")
        assert '<code class="language-python">' in html

    def test_fenced_preserves_markdown_syntax(self):
        html = render("```\n# not a heading\n**not bold**\n```")
        assert "<h1>" not in html and "<strong>" not in html

    def test_fenced_escapes_html(self):
        html = render("```\n<script>\n```")
        assert "&lt;script&gt;" in html

    def test_unclosed_fence_runs_to_end(self):
        html = render("```\nabc")
        assert "abc" in html and "<pre>" in html

    def test_tilde_fence(self):
        assert "<pre>" in render("~~~\ncode\n~~~")

    def test_indented_code_block(self):
        html = render("    indented code")
        assert html == "<pre><code>indented code\n</code></pre>\n"

    def test_indented_block_multiline(self):
        html = render("    a\n    b")
        assert "a\nb" in html


class TestLists:
    def test_unordered_list(self):
        html = render("- one\n- two\n- three")
        assert html.count("<li>") == 3
        assert html.startswith("<ul>")

    @pytest.mark.parametrize("marker", ["-", "*", "+"])
    def test_bullet_markers(self, marker):
        assert "<ul>" in render(f"{marker} item")

    def test_ordered_list(self):
        html = render("1. one\n2. two")
        assert html.startswith("<ol>")
        assert html.count("<li>") == 2

    def test_ordered_list_start_attribute(self):
        assert '<ol start="3">' in render("3. three\n4. four")

    def test_ordered_list_start_one_no_attribute(self):
        assert "<ol>" in render("1. one")

    def test_nested_list(self):
        html = render("- outer\n  - inner")
        assert html.count("<ul>") == 2

    def test_list_item_inline_markup(self):
        assert "<strong>b</strong>" in render("- a **b** c")

    def test_loose_list_items_get_paragraphs(self):
        html = render("- one\n\n- two")
        assert "<p>one</p>" in html

    def test_list_then_paragraph(self):
        html = render("- item\n\nafter")
        assert "<p>after</p>" in html
        assert "<li>item</li>" in html

    def test_lazy_continuation(self):
        html = render("- first line\ncontinued")
        assert "first line continued" in html


class TestBlockquotes:
    def test_simple_quote(self):
        html = render("> quoted")
        assert html == "<blockquote>\n<p>quoted</p>\n</blockquote>\n"

    def test_multiline_quote(self):
        html = render("> line one\n> line two")
        assert "line one line two" in html

    def test_quote_with_heading(self):
        html = render("> # Quoted title")
        assert "<blockquote>" in html and "<h1>Quoted title</h1>" in html

    def test_lazy_quote_continuation(self):
        html = render("> start\ncontinues")
        assert "start continues" in html


class TestThematicBreak:
    @pytest.mark.parametrize("rule", ["---", "***", "___", "- - -"])
    def test_rules(self, rule):
        assert render(rule) == "<hr />\n"

    def test_dashes_after_paragraph_are_setext(self):
        assert "<h2>" in render("title\n---")


class TestInline:
    def test_emphasis(self):
        assert render_inline("*em*") == "<em>em</em>"

    def test_strong(self):
        assert render_inline("**strong**") == "<strong>strong</strong>"

    def test_triple_emphasis(self):
        assert render_inline("***both***") == "<em><strong>both</strong></em>"

    def test_underscore_emphasis(self):
        assert render_inline("_em_") == "<em>em</em>"

    def test_unclosed_marker_literal(self):
        assert render_inline("a * b") == "a * b"

    def test_code_span(self):
        assert render_inline("`x = 1`") == "<code>x = 1</code>"

    def test_code_span_escapes(self):
        assert render_inline("`<b>`") == "<code>&lt;b&gt;</code>"

    def test_double_backtick_code_span(self):
        assert render_inline("``a ` b``") == "<code>a ` b</code>"

    def test_emphasis_inside_code_not_rendered(self):
        assert render_inline("`*x*`") == "<code>*x*</code>"

    def test_link(self):
        html = render_inline("[text](https://example.org)")
        assert html == '<a href="https://example.org">text</a>'

    def test_link_with_title(self):
        html = render_inline('[t](https://e.org "Title")')
        assert 'title="Title"' in html

    def test_link_label_markup(self):
        assert "<em>" in render_inline("[*em*](https://e.org)")

    def test_image(self):
        html = render_inline("![alt](pic.png)")
        assert html == '<img src="pic.png" alt="alt" />'

    def test_autolink(self):
        html = render_inline("<https://example.org>")
        assert html == '<a href="https://example.org">https://example.org</a>'

    def test_email_autolink(self):
        assert 'href="mailto:a@b.com"' in render_inline("<a@b.com>")

    def test_backslash_escape(self):
        assert render_inline(r"\*not em\*") == "*not em*"

    def test_html_escaped_by_default(self):
        assert render_inline("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_inline_html_tag_passthrough(self):
        assert render_inline("<span>x</span>") == "<span>x</span>"

    def test_escape_html_quote_mode(self):
        assert escape_html('a"b', quote=True) == "a&quot;b"


class TestDocument:
    def test_full_page_structure(self):
        page = render_document("# Hi", title="T")
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>T</title>" in page
        assert "<h1>Hi</h1>" in page

    def test_title_escaped(self):
        assert "&lt;x&gt;" in render_document("a", title="<x>")

    def test_empty_input(self):
        assert render("") == ""

    def test_crlf_normalized(self):
        assert render("# A\r\nB") == render("# A\nB")

    def test_mixed_document(self):
        doc = (
            "# Title\n\nIntro *text*.\n\n"
            "## Section\n\n- a\n- b\n\n"
            "```js\ncode\n```\n\n> quote\n\n---\n\nend\n"
        )
        html = render(doc)
        for fragment in ("<h1>", "<h2>", "<ul>", "<pre>",
                         "<blockquote>", "<hr />", "<em>text</em>"):
            assert fragment in html

    def test_ast_types(self):
        doc = parse_blocks("# H\n\npara\n\n    code\n\n- x")
        kinds = [type(n) for n in doc.children]
        assert kinds == [Heading, Paragraph, CodeBlock, ListBlock]
