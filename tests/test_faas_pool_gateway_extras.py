"""Additional edge-case coverage: replica lifecycle, autoscaler
boundaries, engine interleavings used by the platform."""

import pytest

from repro import make_world
from repro.faas import AutoscalerConfig, FaaSPlatform, PlatformConfig
from repro.faas.replica import FunctionReplica, ReplicaState
from repro.core.starters import VanillaStarter
from repro.functions import NoopFunction, make_app
from repro.runtime.base import Request


class TestReplicaLifecycle:
    def _replica(self, kernel):
        handle = VanillaStarter(kernel).start(make_app("noop"))
        return FunctionReplica("noop", handle)

    def test_serve_while_busy_rejected(self, kernel):
        replica = self._replica(kernel)
        replica.state = ReplicaState.BUSY
        with pytest.raises(RuntimeError, match="cannot serve"):
            replica.serve(Request())

    def test_serve_after_terminate_rejected(self, kernel):
        replica = self._replica(kernel)
        replica.terminate()
        with pytest.raises(RuntimeError):
            replica.serve(Request())

    def test_terminate_idempotent(self, kernel):
        replica = self._replica(kernel)
        replica.terminate()
        replica.terminate()
        assert replica.state is ReplicaState.TERMINATED

    def test_idle_for_tracks_last_activity(self, kernel):
        replica = self._replica(kernel)
        replica.serve(Request())
        kernel.clock.advance(123.0)
        assert replica.idle_for_ms(kernel.clock.now) == pytest.approx(123.0)

    def test_cold_start_recorded(self, kernel):
        replica = self._replica(kernel)
        assert replica.cold_start_ms > 90.0

    def test_replica_ids_unique(self, kernel):
        a = self._replica(kernel)
        b = self._replica(kernel)
        assert a.replica_id != b.replica_id


class TestAutoscalerBoundaries:
    def _platform(self, kernel, min_replicas=0, idle_timeout=1000.0):
        platform = FaaSPlatform(kernel, PlatformConfig(
            autoscaler=AutoscalerConfig(idle_timeout_ms=idle_timeout,
                                        min_replicas=min_replicas)))
        platform.register_function(NoopFunction)
        return platform

    def test_min_replicas_survive_gc(self, kernel):
        platform = self._platform(kernel, min_replicas=1)
        platform.scale("noop", 3)
        kernel.clock.advance(10_000.0)
        platform.gc_tick()
        assert platform.replica_count("noop") == 1

    def test_ensure_capacity_respects_metadata_cap(self, kernel):
        platform = FaaSPlatform(kernel)
        platform.register_function(NoopFunction, max_replicas=2)
        added = platform.autoscaler.ensure_capacity("noop", 10)
        assert added == 2
        assert platform.replica_count("noop") == 2

    def test_ensure_capacity_noop_when_satisfied(self, kernel):
        platform = self._platform(kernel)
        platform.scale("noop", 2)
        assert platform.autoscaler.ensure_capacity("noop", 2) == 0

    def test_scale_events_recorded(self, kernel):
        platform = self._platform(kernel, idle_timeout=100.0)
        platform.scale("noop", 2)
        kernel.clock.advance(1_000.0)
        platform.gc_tick()
        actions = [e.action for e in platform.autoscaler.events]
        assert "scale-up" in actions and "gc" in actions

    def test_busy_replica_not_collected(self, kernel):
        platform = self._platform(kernel, idle_timeout=1.0)
        platform.invoke("noop")
        replica = platform.deployer.replicas("noop")[0]
        replica.state = ReplicaState.BUSY
        kernel.clock.advance(10_000.0)
        platform.gc_tick()
        assert platform.replica_count("noop") == 1
        replica.state = ReplicaState.IDLE


class TestRouterEdgeCases:
    def test_route_to_unregistered_function(self, kernel):
        platform = FaaSPlatform(kernel)
        from repro.faas.registry import RegistryError
        with pytest.raises(RegistryError):
            platform.invoke("ghost")

    def test_provision_failure_releases_allocation(self, kernel):
        platform = FaaSPlatform(kernel, PlatformConfig(
            nodes=1, node_memory_mib=100_000.0))
        platform.register_function(NoopFunction, max_replicas=1)
        platform.invoke("noop")
        free_before = platform.resources.total_free_mib
        with pytest.raises(RuntimeError, match="max_replicas"):
            platform.deployer.provision("noop")
        assert platform.resources.total_free_mib == free_before

    def test_stats_latency_fields_consistent(self, kernel):
        platform = FaaSPlatform(kernel)
        platform.register_function(NoopFunction)
        for _ in range(5):
            platform.invoke("noop")
        for record in platform.router.stats.records:
            assert record.total_ms >= record.queued_ms
            assert record.total_ms >= record.service_ms
        assert platform.router.stats.cold_start_fraction == pytest.approx(0.2)


class TestServiceExperimentConsistency:
    def test_interval_zero_back_to_back(self, kernel):
        from repro.bench.workload import LoadGenerator
        result = LoadGenerator(kernel).run(
            VanillaStarter(kernel), make_app("noop"),
            requests=3, interval_ms=0.0)
        for a, b in zip(result.responses, result.responses[1:]):
            assert b.started_ms == pytest.approx(a.finished_ms)
