"""SLOs, burn rates, alert wiring, and the offline metrics pipeline.

Covers the satellite end to end: histogram exemplars link buckets to
traces and survive both export formats; merged registries feed SLO
burn-rate math; PrometheusLite fires SLO alerts next to threshold
alerts; and the ``alerts`` CLI audits a recorded JSONL dump with a
gating exit code.
"""

import pytest

from repro.obs.cli import alerts_main
from repro.obs.export import (
    metrics_to_jsonl,
    parse_prometheus,
    registry_from_jsonl,
    render_prometheus,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.slo import (
    COLD_START_P99,
    DEFAULT_SLOS,
    RESTORE_SUCCESS,
    SLO,
    evaluate_slos,
    merged_histogram,
)
from repro.faas.openfaas.prometheus import PrometheusLite


def latency_registry(fast=99, slow=1, threshold=800.0):
    """fast obs below threshold, slow obs well above it."""
    registry = MetricsRegistry()
    for i in range(fast):
        registry.observe("router_cold_start_wait_ms", 50.0 + i % 7,
                         labels={"technique": "prebake"})
    for _ in range(slow):
        registry.observe("router_cold_start_wait_ms", threshold * 4,
                         labels={"technique": "vanilla"})
    return registry


class TestHistogramSupport:
    def test_fraction_above(self):
        histogram = Histogram()
        for value in (10.0, 20.0, 4000.0):
            histogram.observe(value)
        assert histogram.fraction_above(800.0) == pytest.approx(1 / 3)
        assert histogram.fraction_above(1e9) == 0.0

    def test_merge_combines_counts_and_exemplars(self):
        a, b = Histogram(), Histogram()
        a.observe(10.0, exemplar="t-0001")
        b.observe(5000.0, exemplar="t-0002")
        a.merge(b)
        assert a.count == 2
        assert a.min_value == 10.0 and a.max_value == 5000.0
        assert {e[0] for e in a.exemplars.values()} == {"t-0001", "t-0002"}

    def test_merged_histogram_spans_label_subsets(self):
        registry = latency_registry()
        merged = merged_histogram(registry, "router_cold_start_wait_ms")
        assert merged is not None and merged.count == 100
        only = merged_histogram(registry, "router_cold_start_wait_ms",
                                labels={"technique": "vanilla"})
        assert only.count == 1
        assert merged_histogram(registry, "no_such_metric") is None


class TestSloMath:
    def test_latency_slo_on_budget(self):
        # 1 bad in 100 against a 99% objective: burn rate exactly 1.0.
        status = evaluate_slos(latency_registry(), [COLD_START_P99])[0]
        assert status.bad_fraction == pytest.approx(0.01)
        assert status.burn_rate == pytest.approx(1.0)
        assert not status.breached

    def test_latency_slo_breaches_when_burning_fast(self):
        status = evaluate_slos(latency_registry(fast=90, slow=10),
                               [COLD_START_P99])[0]
        assert status.burn_rate == pytest.approx(10.0)
        assert status.breached

    def test_ratio_slo(self):
        registry = MetricsRegistry()
        registry.inc("criu_restore_total", 200.0)
        registry.inc("criu_restore_failures_total", 4.0)
        status = evaluate_slos(registry, [RESTORE_SUCCESS])[0]
        assert status.bad_fraction == pytest.approx(0.02)
        assert status.burn_rate == pytest.approx(2.0)
        assert status.breached

    def test_no_data_is_not_a_breach(self):
        for status in evaluate_slos(MetricsRegistry(), list(DEFAULT_SLOS)):
            assert status.bad_fraction is None
            assert status.burn_rate is None
            assert status.healthy

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLO(name="bad", objective=1.0)
        with pytest.raises(ValueError):
            SLO(name="bad", objective=0.5, kind="nonsense")


class TestPrometheusSloAlerts:
    def test_slo_breach_fires_synthetic_alert(self):
        prometheus = PrometheusLite(registry=latency_registry(fast=80,
                                                              slow=20))
        prometheus.add_slo(COLD_START_P99)
        alerts = prometheus.evaluate(now_ms=5.0)
        (alert,) = alerts
        assert alert.rule.name == "slo:cold-start-p99"
        assert alert.value == pytest.approx(20.0)  # 20% bad / 1% budget
        assert prometheus.fired == alerts

    def test_healthy_slo_stays_quiet(self):
        prometheus = PrometheusLite(registry=latency_registry())
        prometheus.add_slo(COLD_START_P99)
        assert prometheus.evaluate() == []

    def test_burn_threshold_raises_the_bar(self):
        prometheus = PrometheusLite(registry=latency_registry(fast=98,
                                                              slow=2))
        prometheus.add_slo(COLD_START_P99, burn_threshold=3.0)
        assert prometheus.evaluate() == []  # burn 2.0 < threshold 3.0

    def test_invalid_burn_threshold_rejected(self):
        with pytest.raises(ValueError):
            PrometheusLite().add_slo(COLD_START_P99, burn_threshold=0.0)

    def test_slo_alert_reaches_subscribers(self):
        prometheus = PrometheusLite(registry=latency_registry(fast=50,
                                                              slow=50))
        prometheus.add_slo(COLD_START_P99)
        seen = []
        prometheus.subscribe(seen.append)
        prometheus.evaluate()
        assert len(seen) == 1 and seen[0].rule.name.startswith("slo:")


class TestExemplarsAndRoundTrips:
    def test_exemplar_rendered_and_text_still_parses(self):
        registry = MetricsRegistry()
        registry.observe("lat_ms", 12.0, exemplar="t-0042")
        text = render_prometheus(registry)
        assert "# EXEMPLAR lat_ms" in text and "trace_id=t-0042" in text
        parsed = parse_prometheus(text)  # comments must not break parsing
        assert parsed["lat_ms_count"][()] == 1.0

    def test_jsonl_round_trip_preserves_everything(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 3.0, labels={"fn": "noop"})
        registry.set_gauge("pool_idle", 2.0)
        for i, value in enumerate((5.0, 900.0, 40.0)):
            registry.observe("lat_ms", value, labels={"fn": "noop"},
                             exemplar=f"t-{i:04d}")
        rebuilt = registry_from_jsonl(metrics_to_jsonl(registry))
        assert rebuilt.value("requests_total",
                             labels={"fn": "noop"}) == 3.0
        assert rebuilt.value("pool_idle") == 2.0
        merged = merged_histogram(rebuilt, "lat_ms")
        assert merged.count == 3
        assert merged.total == pytest.approx(945.0)
        assert {e[0] for e in merged.exemplars.values()} == \
            {"t-0000", "t-0001", "t-0002"}
        # Round-tripping again is a fixed point.
        assert metrics_to_jsonl(rebuilt) == metrics_to_jsonl(registry)

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1.0)
        b.inc("n", 2.0)
        b.observe("lat_ms", 7.0)
        a.merge(b)
        assert a.value("n") == 3.0
        assert merged_histogram(a, "lat_ms").count == 1


class TestAlertsCli:
    def _dump(self, tmp_path, registry):
        path = tmp_path / "metrics.jsonl"
        path.write_text(metrics_to_jsonl(registry), encoding="utf-8")
        return str(path)

    def test_healthy_dump_exits_zero(self, tmp_path, capsys):
        exit_code = alerts_main([self._dump(tmp_path, latency_registry())])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "cold-start-p99" in out and "BREACH" not in out

    def test_breached_dump_exits_one(self, tmp_path, capsys):
        registry = latency_registry(fast=50, slow=50)
        exit_code = alerts_main([self._dump(tmp_path, registry)])
        assert exit_code == 1
        assert "BREACH" in capsys.readouterr().out

    def test_unreadable_file_exits_two(self, tmp_path):
        assert alerts_main([str(tmp_path / "absent.jsonl")]) == 2
