"""Tests for the concurrent cluster simulation."""

import pytest

from repro.core.policy import AfterWarmup
from repro.faas.cluster import (
    LatencySampler,
    SimulatedCluster,
    run_burst_experiment,
)
from repro.sim.engine import Simulation


class FixedSampler:
    """Deterministic sampler for unit tests."""

    def __init__(self, startup=100.0, service=10.0):
        self._startup = startup
        self._service = service
        self.median_startup_ms = startup

    def startup_ms(self):
        return self._startup

    def service_ms(self):
        return self._service


def make_cluster(max_replicas=4, idle_timeout=1000.0,
                 startup=100.0, service=10.0):
    sim = Simulation()
    cluster = SimulatedCluster(sim, FixedSampler(startup, service),
                               max_replicas=max_replicas,
                               idle_timeout_ms=idle_timeout)
    return sim, cluster


class TestSimulatedCluster:
    def test_single_request_cold_start(self):
        sim, cluster = make_cluster()
        cluster.submit_trace([0.0])
        metrics = cluster.run()
        record = metrics.records[0]
        assert record.cold_start
        assert record.wait_ms == pytest.approx(100.0)
        assert record.total_ms == pytest.approx(110.0)

    def test_second_request_reuses_idle_replica(self):
        sim, cluster = make_cluster()
        cluster.submit_trace([0.0, 200.0])
        metrics = cluster.run()
        warm = metrics.records[1]
        assert not warm.cold_start
        assert warm.wait_ms == 0.0
        assert metrics.cold_starts == 1

    def test_concurrent_burst_overlapping_cold_starts(self):
        """Cold starts overlap in time — a burst of 3 with capacity 4
        finishes only one startup-duration after t=0."""
        sim, cluster = make_cluster(max_replicas=4)
        cluster.submit_trace([0.0, 0.0, 0.0])
        metrics = cluster.run()
        assert metrics.cold_starts == 3
        assert metrics.peak_replicas == 3
        assert metrics.makespan_ms == pytest.approx(110.0)

    def test_queueing_at_replica_cap(self):
        sim, cluster = make_cluster(max_replicas=1)
        cluster.submit_trace([0.0, 0.0, 0.0])
        metrics = cluster.run()
        assert metrics.cold_starts == 1
        queued = [r for r in metrics.records if r.queued_for_replica]
        assert len(queued) == 2
        # Serial service behind one replica: 100+10, +10, +10.
        assert metrics.makespan_ms == pytest.approx(130.0)

    def test_fifo_queue_order(self):
        sim, cluster = make_cluster(max_replicas=1, service=10.0)
        cluster.submit_trace([0.0, 1.0, 2.0])
        metrics = cluster.run()
        dispatch_order = sorted(metrics.records, key=lambda r: r.dispatched_ms)
        arrival_order = sorted(metrics.records, key=lambda r: r.arrival_ms)
        assert [r.request_id for r in dispatch_order] == \
            [r.request_id for r in arrival_order]

    def test_idle_gc_reclaims_and_forces_new_cold_start(self):
        sim, cluster = make_cluster(idle_timeout=500.0)
        cluster.submit_trace([0.0, 2000.0])
        metrics = cluster.run()
        # Both replicas are eventually collected (the second once the
        # trace ends), and the long gap forces a second cold start.
        assert metrics.gc_kills == 2
        assert metrics.cold_starts == 2

    def test_reuse_within_timeout_prevents_gc(self):
        sim, cluster = make_cluster(idle_timeout=500.0)
        cluster.submit_trace([0.0, 300.0, 600.0])
        metrics = cluster.run()
        assert metrics.cold_starts == 1
        # GC timers from early releases must not kill a reused replica.
        assert all(not r.cold_start for r in metrics.records[1:])

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SimulatedCluster(Simulation(), FixedSampler(), max_replicas=0)

    def test_wait_quantile_and_empty_metrics(self):
        sim, cluster = make_cluster()
        assert cluster.metrics.wait_quantile(0.99) == 0.0
        assert cluster.metrics.makespan_ms == 0.0


class TestLatencySampler:
    def test_samples_come_from_measured_pools(self):
        sampler = LatencySampler("noop", "vanilla", seed=5, pool_size=10)
        draws = {sampler.startup_ms() for _ in range(30)}
        assert draws <= set(sampler._startups)
        assert 95.0 < sampler.median_startup_ms < 112.0

    def test_prebake_sampler_reflects_technique(self):
        vanilla = LatencySampler("noop", "vanilla", seed=5, pool_size=8)
        prebake = LatencySampler("noop", "prebake", seed=5, pool_size=8)
        assert prebake.median_startup_ms < 0.7 * vanilla.median_startup_ms


class TestBurstExperiment:
    def test_prebake_cuts_burst_makespan(self):
        vanilla = run_burst_experiment("markdown", "vanilla", burst_size=8,
                                       max_replicas=8, seed=6)
        prebake = run_burst_experiment("markdown", "prebake",
                                       policy=AfterWarmup(1),
                                       burst_size=8, max_replicas=8, seed=6)
        assert vanilla.cold_starts == prebake.cold_starts == 8
        assert prebake.makespan_ms < 0.7 * vanilla.makespan_ms

    def test_burst_beyond_cap_queues(self):
        metrics = run_burst_experiment("noop", "vanilla", burst_size=10,
                                       max_replicas=4, seed=7)
        assert metrics.cold_starts == 4
        assert metrics.peak_replicas == 4
        assert sum(1 for r in metrics.records if r.queued_for_replica) == 6
