"""Cross-cutting property-based invariants over the whole stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_world
from repro.bench.stats import ecdf
from repro.core.persistence import EvictingSnapshotStore
from repro.core.store import SnapshotKey
from repro.criu.checkpoint import CheckpointEngine
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.engine import Simulation


class TestCostModelProperties:
    @given(a=st.floats(min_value=0.0, max_value=500.0),
           b=st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=60)
    def test_restore_cost_monotone_in_size(self, a, b):
        m = DEFAULT_COST_MODEL
        low, high = sorted((a, b))
        assert m.restore_cost(low) <= m.restore_cost(high)

    @given(classes=st.integers(min_value=0, max_value=5000),
           kib=st.floats(min_value=0.0, max_value=100_000.0))
    @settings(max_examples=60)
    def test_restored_load_never_exceeds_cold_load(self, classes, kib):
        m = DEFAULT_COST_MODEL
        assert m.restored_load_cost(classes, kib) <= \
            m.cold_load_cost(classes, kib) + 1e-9

    @given(mib=st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=60)
    def test_dump_cost_positive_and_monotone(self, mib):
        m = DEFAULT_COST_MODEL
        assert m.dump_cost(mib) > 0
        assert m.dump_cost(mib + 1.0) > m.dump_cost(mib)


class TestEcdfProperties:
    @given(data=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                         min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_ecdf_monotone_and_bounded(self, data):
        xs, ps = ecdf(data)
        assert xs == sorted(xs)
        assert all(0.0 < p <= 1.0 for p in ps)
        assert all(a <= b for a, b in zip(ps, ps[1:]))
        assert ps[-1] == 1.0


class TestEngineProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                           min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_events_dispatch_in_time_order(self, delays):
        sim = Simulation()
        fired = []
        for delay in delays:
            sim.schedule_in(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert sim.now == pytest.approx(max(delays))

    @given(delays=st.lists(st.floats(min_value=0.01, max_value=50.0),
                           min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_sequential_process_time_sums(self, delays):
        sim = Simulation()

        def proc():
            for delay in delays:
                yield delay
            return sim.now

        result = sim.run_process(proc())
        assert result == pytest.approx(sum(delays))


class TestEvictingStoreProperties:
    @given(sizes=st.lists(st.floats(min_value=0.5, max_value=4.0),
                          min_size=1, max_size=12),
           capacity=st.floats(min_value=5.0, max_value=20.0))
    @settings(max_examples=25, deadline=None)
    def test_capacity_never_exceeded(self, sizes, capacity):
        world = make_world(seed=0)
        kernel = world.kernel
        store = EvictingSnapshotStore(capacity_mib=capacity)
        engine = CheckpointEngine(kernel)
        for index, mib in enumerate(sizes):
            proc = kernel.clone(kernel.init_process)
            proc.address_space.grow_anon("heap", mib)
            image = engine.dump(proc, leave_running=False)
            key = SnapshotKey(f"fn-{index}", "jvm", "after-ready")
            if image.total_mib > capacity:
                with pytest.raises(ValueError):
                    store.put(key, image)
                continue
            store.put(key, image)
            assert store.total_mib <= capacity + 1e-9

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_snapshot_restore_count_monotone(self, seed):
        from repro.core.manager import PrebakeManager
        from repro.functions import make_app
        world = make_world(seed=seed)
        manager = PrebakeManager(world.kernel)
        app = make_app("noop")
        manager.deploy(app)
        key = manager.prebaker.store.keys()[0]
        counts = []
        for _ in range(3):
            manager.start_replica(app, technique="prebake")
            counts.append(manager.prebaker.store.restore_count(key))
        assert counts == sorted(counts)
        assert counts[-1] == 3


class TestDeterminismProperties:
    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_startup(self, seed):
        from repro.core.starters import VanillaStarter
        from repro.functions import make_app

        def measure():
            world = make_world(seed=seed)
            handle = VanillaStarter(world.kernel).start(make_app("markdown"))
            return handle.startup_ms("ready")

        assert measure() == measure()
