"""Content-addressed page store, layered images, and working-set restore."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_world
from repro.core.bake import Prebaker
from repro.core.bakery import registry_growth_curve
from repro.core.manager import PrebakeManager
from repro.core.persistence import (
    EvictingSnapshotStore,
    SnapshotArchive,
    VfsBackend,
)
from repro.core.policy import AfterReady, AfterWarmup
from repro.core.store import SnapshotKey, SnapshotStore
from repro.criu.checkpoint import CheckpointEngine
from repro.criu.images import SnapshotCorrupted
from repro.criu.pagestore import (
    CHUNK_PAGES,
    FUNCTION_CODE_LAYER,
    PageStore,
    RUNTIME_BASE_LAYER,
    WARM_DELTA_LAYER,
    layer_image,
    rebuild_vma_pages,
)
from repro.criu.restore import (
    DEFAULT_LAZY_EAGER_FRACTION,
    RestoreEngine,
    RestoreMode,
)
from repro.criu.serialize import deserialize_image, serialize_image
from repro.functions import make_app
from repro.osproc.memory import PAGE_SIZE, VMAKind, page_content_key
from repro.runtime.base import Request


def dump_process(kernel, mib=1.0, tag="h", comm="subject", warm=False):
    proc = kernel.clone(kernel.init_process, comm=comm)
    proc.address_space.grow_anon("heap", mib, content_tag=tag)
    return CheckpointEngine(kernel).dump(proc, leave_running=False, warm=warm)


def vma_pages(image):
    return {v.start: (v.resident_indices, v.content_tags) for v in image.vmas}


class TestPageStore:
    def test_identical_images_share_all_chunks(self, kernel):
        store = PageStore()
        first = dump_process(kernel, 2.0)
        second = dump_process(kernel, 2.0)
        a = layer_image(first, store)
        before = store.physical_bytes
        b = layer_image(second, store)
        assert store.physical_bytes == before          # nothing new stored
        assert store.dedup_hits > 0
        assert a.chunk_ids == b.chunk_ids              # same content, same ids
        assert store.logical_bytes == first.pages_bytes + second.pages_bytes

    def test_different_content_does_not_collide(self, kernel):
        store = PageStore()
        a = layer_image(dump_process(kernel, 1.0, tag="x"), store)
        after_a = store.physical_bytes
        b = layer_image(dump_process(kernel, 1.0, tag="y"), store)
        assert set(a.chunk_ids).isdisjoint(b.chunk_ids)
        assert store.physical_bytes == 2 * after_a  # no sharing across tags

    def test_refcounts_track_sharing_and_release(self, kernel):
        store = PageStore()
        a = layer_image(dump_process(kernel, 1.0), store)
        cid = a.chunk_ids[0]
        # A uniform heap dedups within one image too: every 64-page
        # window references the same stored chunk.
        rc_one = store.refcount(cid)
        assert rc_one >= 1
        b = layer_image(dump_process(kernel, 1.0), store)
        assert store.refcount(cid) == 2 * rc_one
        for ref in b.chunk_refs:
            store.release(ref.chunk_id)
        assert store.refcount(cid) == rc_one
        for ref in a.chunk_refs:
            store.release(ref.chunk_id)
        assert not store.contains(cid)
        assert store.physical_bytes == 0

    def test_chunk_identity_ignores_addresses(self, kernel):
        """The same bytes at different addresses dedup (ASLR-proof)."""
        store = PageStore()
        proc = kernel.clone(kernel.init_process, comm="subject")
        first = proc.address_space.mmap(CHUNK_PAGES * PAGE_SIZE,
                                        VMAKind.ANON, label="one")
        first.touch_range(0, CHUNK_PAGES, content_tag="same")
        second = proc.address_space.mmap(CHUNK_PAGES * PAGE_SIZE,
                                         VMAKind.ANON, label="two")
        second.touch_range(0, CHUNK_PAGES, content_tag="same")
        image = CheckpointEngine(kernel).dump(proc, leave_running=False)
        layered = layer_image(image, store)
        refs = [r for layer in layered.layers for r in layer.chunk_refs]
        heap_ids = {r.chunk_id for r in refs}
        assert len(refs) > len(heap_ids)  # two windows, one stored chunk

    def test_layers_split_runtime_base_from_function(self, kernel):
        prebaker = Prebaker(kernel)
        report = prebaker.bake(make_app("markdown"), policy=AfterReady())
        layered = layer_image(report.image, PageStore())
        base = layered.layer(RUNTIME_BASE_LAYER)
        func = layered.layer(FUNCTION_CODE_LAYER)
        assert base is not None and base.page_count > 0
        assert func is not None and func.page_count > 0
        assert layered.logical_bytes == report.image.pages_bytes

    def test_warm_delta_layer_isolates_changed_labels(self, kernel):
        prebaker = Prebaker(kernel)
        ready = prebaker.bake(make_app("markdown"), policy=AfterReady())
        warm = prebaker.bake(make_app("markdown"), policy=AfterWarmup(1))
        store = PageStore()
        layered = layer_image(warm.image, store, base=ready.image)
        delta = layered.layer(WARM_DELTA_LAYER)
        assert delta is not None and delta.page_count > 0
        assert delta.page_count < warm.image.resident_pages

    def test_rebuild_recovers_exact_pages(self, kernel):
        store = PageStore()
        image = dump_process(kernel, 3.0)
        layered = layer_image(image, store)
        rebuilt = rebuild_vma_pages(image, layered, store)
        expected = {i: (v.resident_indices, v.content_tags)
                    for i, v in enumerate(image.vmas)}
        assert rebuilt == expected

    def test_page_content_key_is_stable(self):
        assert page_content_key("x") == page_content_key("x")
        assert page_content_key("x") != page_content_key("y")
        assert len(page_content_key("anything")) == 16


class TestSnapshotStoreDedup:
    def _bake_two(self, kernel):
        store = SnapshotStore()
        prebaker = Prebaker(kernel, store)
        prebaker.bake(make_app("noop"), policy=AfterReady())
        prebaker.bake(make_app("markdown"), policy=AfterReady())
        return store

    def test_functions_sharing_runtime_dedup(self, kernel):
        store = self._bake_two(kernel)
        assert store.dedup_ratio > 1.0
        assert store.physical_bytes < store.logical_bytes

    def test_materialize_reconstructs_pages(self, kernel):
        store = SnapshotStore()
        prebaker = Prebaker(kernel, store)
        report = prebaker.bake(make_app("markdown"), policy=AfterWarmup(1))
        clone = store.materialize(report.key)
        assert vma_pages(clone) == vma_pages(report.image)
        assert clone.digest == report.image.digest
        clone.verify_integrity()

    def test_delete_releases_chunks(self, kernel):
        store = self._bake_two(kernel)
        for key in store.keys():
            store.delete(key)
        assert store.physical_bytes == 0

    def test_replace_does_not_leak_chunks(self, kernel):
        store = SnapshotStore()
        key = SnapshotKey("fn", "jvm", "after-ready")
        store.put(key, dump_process(kernel, 2.0, tag="v1"))
        after_first = store.physical_bytes
        store.put(key, dump_process(kernel, 2.0, tag="v2"))
        assert store.physical_bytes == after_first  # old chunks released
        store.delete(key)
        assert store.physical_bytes == 0

    def test_quarantine_releases_chunks_keeps_image(self, kernel):
        store = SnapshotStore()
        key = SnapshotKey("fn", "jvm", "after-ready")
        store.put(key, dump_process(kernel, 1.0))
        assert store.quarantine(key)
        assert store.quarantined_count == 1
        assert store.physical_bytes == 0
        assert not store.contains(key)

    def test_repair_rewrites_corrupted_chunks(self, kernel):
        store = SnapshotStore()
        prebaker = Prebaker(kernel, store)
        report = prebaker.bake(make_app("noop"), policy=AfterReady())
        image = store.peek(report.key)
        image.tamper(pages=3)
        with pytest.raises(SnapshotCorrupted):
            image.verify_integrity()
        chunks = store.repair(report.key)
        assert chunks >= 1
        store.peek(report.key).verify_integrity()

    def test_repair_clean_image_is_noop(self, kernel):
        store = SnapshotStore()
        prebaker = Prebaker(kernel, store)
        report = prebaker.bake(make_app("noop"), policy=AfterReady())
        assert store.repair(report.key) == 0

    def test_eviction_releases_chunks(self, kernel):
        archive = SnapshotArchive(VfsBackend(kernel.fs))
        store = EvictingSnapshotStore(capacity_mib=4.0, archive=archive)
        a = SnapshotKey("a", "jvm", "after-ready")
        b = SnapshotKey("b", "jvm", "after-ready")
        store.put(a, dump_process(kernel, 2.0, tag="a"))
        store.put(b, dump_process(kernel, 2.5, tag="b"))  # evicts a
        assert store.evictions == 1
        store.delete(b)
        assert store.physical_bytes == 0  # a's chunks went with eviction
        # Faulting a back from the archive re-registers its chunks.
        assert store.get(a).resident_pages > 0
        assert store.layered(a) is not None
        assert store.physical_bytes > 0

    def test_registry_growth_is_sublinear(self):
        curve = registry_growth_curve(["noop", "markdown"], seed=7)
        assert len(curve) == 2
        assert curve[1]["dedup_ratio"] > curve[0]["dedup_ratio"]
        assert curve[1]["physical_mib"] < curve[1]["logical_mib"]

    @given(layout=st.lists(
        st.tuples(st.integers(1, 128), st.integers(0, 128),
                  st.sampled_from(["a", "b", "c"])),
        min_size=1, max_size=4,
    ), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_dedup_never_changes_page_content(self, layout, seed):
        """Storing through the chunk store is lossless: materialize
        returns exactly the page (index, tag) sets that were put in."""
        world = make_world(seed=seed)
        kernel = world.kernel
        proc = kernel.clone(kernel.init_process, comm="subject")
        for i, (pages, resident, tag) in enumerate(layout):
            vma = proc.address_space.mmap(pages * PAGE_SIZE, VMAKind.ANON,
                                          label=f"v{i}")
            vma.touch_range(0, min(resident, pages), content_tag=tag)
        image = CheckpointEngine(kernel).dump(proc, leave_running=False)
        store = SnapshotStore()
        key = SnapshotKey("prop", "jvm", "after-ready")
        store.put(key, image)
        assert vma_pages(store.materialize(key)) == vma_pages(image)


class TestSerializeDigest:
    def test_v2_roundtrip_carries_digest(self, kernel):
        prebaker = Prebaker(kernel)
        report = prebaker.bake(make_app("noop"), policy=AfterReady())
        assert report.image.digest  # sealed at bake time
        clone = deserialize_image(serialize_image(report.image))
        assert clone.digest == report.image.digest
        clone.verify_integrity()

    def test_v1_blob_still_decodes(self, kernel):
        import json
        import struct
        image = dump_process(kernel, 1.0)
        blob = serialize_image(image)
        header_len = struct.unpack(">I", blob[10:14])[0]
        header = json.loads(blob[14:14 + header_len])
        header.pop("digest", None)  # v1 headers had no digest
        payload = json.dumps(header, separators=(",", ":")).encode()
        v1 = (blob[:8] + struct.pack(">H", 1)
              + struct.pack(">I", len(payload)) + payload)
        clone = deserialize_image(v1)
        assert clone.digest is None
        assert clone.resident_pages == image.resident_pages


class TestWorkingSetRestore:
    def _manager(self, seed=11):
        world = make_world(seed=seed, observe=True)
        manager = PrebakeManager(world.kernel)
        return world.kernel, manager

    def _warm_starter(self, kernel, manager, app, mode):
        return manager.starter("prebake", policy=AfterWarmup(1),
                               restore_mode=mode,
                               version=manager.current_version(app.name))

    def test_first_restore_records_then_prefetches(self):
        kernel, manager = self._manager()
        app = make_app("image-resizer")
        manager.deploy(app, policy=AfterWarmup(1))
        starter = self._warm_starter(kernel, manager, app,
                                     RestoreMode.WORKING_SET)
        recording = starter.start(app)
        recording.invoke(Request())  # first response seals the record
        recording.kill()
        image = manager.store.peek(
            SnapshotKey(app.name, app.runtime_kind, AfterWarmup(1).key,
                        manager.current_version(app.name)))
        record = kernel.working_sets.record_for(image)
        assert record is not None
        assert 0.0 < record.fraction < 0.5  # a small slice of the image
        metrics = kernel.obs.metrics
        assert metrics.value("ws_record_created_total") == 1

    def test_prefetch_beats_eager_for_resizer(self):
        kernel, manager = self._manager()
        app = make_app("image-resizer")
        manager.deploy(app, policy=AfterWarmup(1))
        eager = self._warm_starter(kernel, manager, app, RestoreMode.EAGER)
        ws = self._warm_starter(kernel, manager, app, RestoreMode.WORKING_SET)

        handle = eager.start(app)
        eager_ms = handle.startup_ms("ready")
        handle.invoke(Request())
        handle.kill()

        recording = ws.start(app)           # full-cost recording restore
        recording.invoke(Request())
        recording.kill()
        handle = ws.start(app)              # prefetch restore
        ws_ms = handle.startup_ms("ready")
        response = handle.invoke(Request())
        handle.kill()

        assert ws_ms < eager_ms * 0.7
        assert response.ok

    def test_prefetch_audit_counts_hits(self):
        kernel, manager = self._manager()
        app = make_app("markdown")
        manager.deploy(app, policy=AfterWarmup(1))
        ws = self._warm_starter(kernel, manager, app, RestoreMode.WORKING_SET)
        for _ in range(3):
            handle = ws.start(app)
            handle.invoke(Request())
            handle.kill()
        metrics = kernel.obs.metrics
        assert metrics.value("ws_record_created_total") == 1
        assert metrics.value("ws_prefetch_hit_pages_total") > 0
        # Deterministic replicas touch exactly the recorded set.
        assert metrics.value("ws_prefetch_miss_pages_total") == 0

    def test_working_set_without_record_costs_like_eager(self):
        kernel, manager = self._manager()
        app = make_app("noop")
        manager.deploy(app, policy=AfterWarmup(1))
        eager = self._warm_starter(kernel, manager, app, RestoreMode.EAGER)
        eager_ms = eager.start(app).startup_ms("ready")
        kernel2, manager2 = self._manager()
        app2 = make_app("noop")
        manager2.deploy(app2, policy=AfterWarmup(1))
        ws = self._warm_starter(kernel2, manager2, app2,
                                RestoreMode.WORKING_SET)
        ws_ms = ws.start(app2).startup_ms("ready")
        assert ws_ms == pytest.approx(eager_ms, rel=0.25)


class TestLazyFractionParameter:
    def test_default_matches_module_constant(self, kernel):
        engine = RestoreEngine(kernel)
        assert engine.lazy_eager_fraction == DEFAULT_LAZY_EAGER_FRACTION

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_out_of_range_rejected(self, kernel, bad):
        with pytest.raises(ValueError):
            RestoreEngine(kernel, lazy_eager_fraction=bad)

    def test_fraction_scales_lazy_restore_cost(self):
        def lazy_ready_ms(fraction):
            world = make_world(seed=3)
            manager = PrebakeManager(world.kernel)
            app = make_app("image-resizer")
            manager.deploy(app, policy=AfterWarmup(1))
            starter = manager.starter(
                "prebake", policy=AfterWarmup(1),
                restore_mode=RestoreMode.LAZY,
                version=manager.current_version(app.name))
            starter.restore_engine.lazy_eager_fraction = fraction
            return starter.start(app).startup_ms("ready")

        assert lazy_ready_ms(0.05) < lazy_ready_ms(0.6)
