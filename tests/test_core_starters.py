"""Tests for the vanilla and prebake replica starters."""

import pytest

from repro.core.bake import Prebaker
from repro.core.policy import AfterReady, AfterRuntimeBoot, AfterWarmup
from repro.core.starters import PrebakeStarter, StartError, VanillaStarter
from repro.core.store import SnapshotNotFound
from repro.functions import make_app, small_function
from repro.runtime.base import Request
from repro.sim.costmodel import DEFAULT_COST_MODEL


class TestVanillaStarter:
    def test_start_produces_ready_replica(self, kernel):
        handle = VanillaStarter(kernel).start(make_app("noop"))
        assert handle.technique == "vanilla"
        assert handle.runtime.ready
        assert handle.process.comm == "java"

    def test_startup_near_paper_value(self, quiet_kernel):
        handle = VanillaStarter(quiet_kernel).start(make_app("noop"))
        # paper: ~103ms for NOOP under fork-exec
        assert handle.startup_ms("ready") == pytest.approx(103.3, abs=1.0)

    def test_invoke_works(self, kernel):
        handle = VanillaStarter(kernel).start(make_app("markdown"))
        response = handle.invoke(Request(body="# Title"))
        assert response.ok
        assert "<h1>Title</h1>" in response.body

    def test_first_response_metric_requires_invoke(self, kernel):
        handle = VanillaStarter(kernel).start(make_app("noop"))
        with pytest.raises(StartError):
            handle.startup_ms("first_response")
        handle.invoke()
        assert handle.startup_ms("first_response") > handle.startup_ms("ready")

    def test_unknown_metric_rejected(self, kernel):
        handle = VanillaStarter(kernel).start(make_app("noop"))
        with pytest.raises(ValueError):
            handle.startup_ms("bogus")

    def test_kill_terminates_process(self, kernel):
        handle = VanillaStarter(kernel).start(make_app("noop"))
        handle.kill()
        assert not handle.process.alive


class TestPrebakeStarter:
    def _baked(self, kernel, app, policy=AfterReady()):
        prebaker = Prebaker(kernel)
        prebaker.bake(app, policy=policy)
        return PrebakeStarter(kernel, prebaker.store, policy=policy)

    def test_start_without_snapshot_fails(self, kernel):
        starter = PrebakeStarter(kernel, Prebaker(kernel).store)
        with pytest.raises(SnapshotNotFound):
            starter.start(make_app("noop"))

    def test_start_restores_ready_replica(self, kernel):
        app = make_app("noop")
        starter = self._baked(kernel, app)
        handle = starter.start(app)
        assert handle.technique == "prebake"
        assert handle.runtime.ready

    def test_prebake_faster_than_vanilla(self, kernel):
        app = make_app("image-resizer")
        starter = self._baked(kernel, app)
        prebake_ms = starter.start(app).startup_ms("ready")
        vanilla_ms = VanillaStarter(kernel).start(make_app("image-resizer")).startup_ms("ready")
        assert prebake_ms < 0.4 * vanilla_ms

    def test_noop_restore_matches_calibration(self, quiet_kernel):
        app = make_app("noop")
        starter = self._baked(quiet_kernel, app)
        handle = starter.start(app)
        expected = (DEFAULT_COST_MODEL.clone_ms + DEFAULT_COST_MODEL.exec_ms
                    + app.profile.restore_ready_ms)
        assert handle.startup_ms("ready") == pytest.approx(expected, rel=0.01)

    def test_restored_replica_serves_correctly(self, kernel):
        app = make_app("markdown")
        starter = self._baked(kernel, app)
        handle = starter.start(app)
        response = handle.invoke(Request(body="*em*"))
        assert "<em>em</em>" in response.body

    def test_multiple_replicas_from_one_bake(self, kernel):
        app = make_app("noop")
        starter = self._baked(kernel, app)
        handles = [starter.start(app) for _ in range(4)]
        assert len({h.process.pid for h in handles}) == 4
        assert all(h.runtime.ready for h in handles)

    def test_boot_only_snapshot_finishes_appinit_on_start(self, kernel):
        app = make_app("markdown")
        starter = self._baked(kernel, app, policy=AfterRuntimeBoot())
        handle = starter.start(app)
        assert handle.runtime.ready
        # It paid APPINIT after restore, so it is slower than a
        # ready-state restore but still skips the RTS.
        ready_starter = self._baked(kernel, make_app("markdown"))
        ready_ms = ready_starter.start(make_app("markdown")).startup_ms("ready")
        assert handle.startup_ms("ready") > ready_ms

    def test_warm_start_loads_no_classes(self, kernel):
        app = small_function()
        starter = self._baked(kernel, app, policy=AfterWarmup(1))
        handle = starter.start(app)
        t0 = kernel.clock.now
        handle.invoke()
        first_request_ms = kernel.clock.now - t0
        # No class loading on the first request (already in snapshot).
        assert first_request_ms < 5.0
        assert handle.runtime.loaded_classes == len(app.classes)
