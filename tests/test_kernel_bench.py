"""Tests for the kernel throughput microbenchmark and its gate (X11)."""

import json
import pathlib

import pytest

from repro.bench.baseline import (
    HIGHER,
    baseline_path,
    collect_kernel_throughput,
    load_baseline,
)
from repro.bench.cli import main as cli_main
from repro.bench.kernelbench import (
    SPEEDUP_HARD_FLOOR,
    kernel_bench,
    write_kernel_bench_json,
)

# Small budget: the workload still runs at least one full index of
# every component, which is all determinism needs.
TINY = 1_000


class TestKernelBench:
    def test_event_count_is_deterministic(self):
        first = kernel_bench(target_events=TINY, seed=7)
        second = kernel_bench(target_events=TINY, seed=7)
        assert first.events_total == second.events_total
        assert first.fast.events == first.reference.events

    def test_vectorized_backend_is_faster(self):
        # A loose floor — the recorded baseline enforces the real one
        # (SPEEDUP_HARD_FLOOR); this only guards against the backends
        # being accidentally swapped or the switch being a no-op.
        result = kernel_bench(target_events=TINY, seed=7)
        assert result.speedup_vs_reference > 1.5

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            kernel_bench(target_events=0)

    def test_render_mentions_both_backends(self):
        result = kernel_bench(target_events=TINY, seed=7)
        text = result.render()
        assert "fast" in text and "reference" in text
        assert "speedup" in text

    def test_profile_json_round_trips(self, tmp_path):
        result = kernel_bench(target_events=TINY, seed=7)
        path = write_kernel_bench_json(tmp_path / "kb.json", result)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["bench"] == "kernel-throughput"
        assert payload["events_total"] == result.events_total
        assert len(payload["runs"]) == 2


class TestCli:
    def test_kernel_bench_runs(self, capsys, tmp_path):
        out_path = tmp_path / "kb.json"
        assert cli_main(["kernel-bench", "--events", str(TINY),
                         "--profile-out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Kernel throughput" in out
        assert out_path.exists()

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_nonpositive_events_rejected(self, capsys, bad):
        assert cli_main(["kernel-bench", "--events", bad]) == 2
        assert "positive" in capsys.readouterr().err


class TestBaselineGate:
    def test_committed_baseline_exists_and_parses(self):
        path = baseline_path("benchmarks/baselines", "kernel-throughput")
        assert path.exists(), f"missing committed baseline {path}"
        payload, metrics = load_baseline(path)
        assert payload["bench"] == "kernel-throughput"
        assert set(metrics) == {"kernel/events_total",
                                "kernel/speedup_vs_floor"}
        for metric in metrics.values():
            assert metric.direction == HIGHER
        # recorded while clearing the hard floor with margin
        assert metrics["kernel/speedup_vs_floor"].p50 == 1.0

    def test_collector_emits_gated_metrics(self):
        metrics = collect_kernel_throughput(repetitions=1, seed=7)
        assert set(metrics) == {"kernel/events_total",
                                "kernel/speedup_vs_floor"}
        assert metrics["kernel/events_total"].p50 > 0
        # clamped at 1.0: normal wall-clock noise can't move the gate
        assert 0.0 < metrics["kernel/speedup_vs_floor"].p50 <= 1.0

    def test_committed_events_total_matches_a_fresh_run(self):
        """The deterministic half of the baseline must reproduce."""
        path = baseline_path("benchmarks/baselines", "kernel-throughput")
        payload, metrics = load_baseline(path)
        result = kernel_bench(seed=int(payload["seed"]))
        assert float(result.events_total) == \
            metrics["kernel/events_total"].p50
