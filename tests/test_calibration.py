"""Calibration tests: the measured medians must land near the paper's
published values (the repro's headline claim).

Tolerances are deliberately loose (a few percent) — the goal is the
paper's *shape*: who wins, by what factor, and where growth comes from.
"""

import pytest

from repro.bench.harness import run_startup_experiment
from repro.bench.stats import mann_whitney_u
from repro.core.policy import AfterReady, AfterWarmup

# Every test here runs figure-scale simulations (seconds each); CI's
# smoke job deselects them and a dedicated job runs the full suite.
pytestmark = pytest.mark.slow

REPS = 40  # enough for stable medians, fast enough for CI


def startup(function, technique, policy=AfterReady(), seed=11, **kwargs):
    return run_startup_experiment(function, technique, policy=policy,
                                  repetitions=REPS, seed=seed, **kwargs)


class TestFigure3Calibration:
    """Real functions: vanilla vs prebake medians (paper §4.2)."""

    @pytest.mark.parametrize("function,vanilla_ms,prebake_ms", [
        ("noop", 103.0, 62.0),
        ("markdown", 100.0, 53.0),
        ("image-resizer", 310.0, 87.0),
    ])
    def test_medians_match_paper(self, function, vanilla_ms, prebake_ms):
        vanilla = startup(function, "vanilla")
        prebake = startup(function, "prebake")
        assert vanilla.median_ms == pytest.approx(vanilla_ms, rel=0.04)
        assert prebake.median_ms == pytest.approx(prebake_ms, rel=0.04)

    @pytest.mark.parametrize("function,improvement", [
        ("noop", 0.40), ("markdown", 0.47), ("image-resizer", 0.71),
    ])
    def test_improvements_match_paper(self, function, improvement):
        vanilla = startup(function, "vanilla")
        prebake = startup(function, "prebake")
        measured = 1 - prebake.median_ms / vanilla.median_ms
        assert measured == pytest.approx(improvement, abs=0.04)

    def test_medians_statistically_different(self):
        """Paper: 'in both cases the medians are not equal' (95%)."""
        vanilla = startup("noop", "vanilla")
        prebake = startup("noop", "prebake")
        assert mann_whitney_u(vanilla.values, prebake.values).p_value < 0.05

    def test_noop_median_difference_interval(self):
        """Paper: NOOP median difference [40.35, 42.29] ms."""
        from repro.bench.stats import median_difference_ci
        vanilla = startup("noop", "vanilla")
        prebake = startup("noop", "prebake")
        ci = median_difference_ci(vanilla.values, prebake.values)
        assert 38.0 < ci.point < 44.0


class TestTable1Calibration:
    """Synthetic factorial: Table 1 cells within a few percent."""

    PAPER = {
        ("synthetic-small", "vanilla"): 219.8,
        ("synthetic-medium", "vanilla"): 456.0,
        ("synthetic-big", "vanilla"): 1621.0,
        ("synthetic-small", "nowarmup"): 172.5,
        ("synthetic-medium", "nowarmup"): 360.9,
        ("synthetic-big", "nowarmup"): 1340.4,
        ("synthetic-small", "warmup"): 54.4,
        ("synthetic-medium", "warmup"): 63.7,
        ("synthetic-big", "warmup"): 84.0,
    }

    @pytest.mark.parametrize("function", [
        "synthetic-small", "synthetic-medium", "synthetic-big"])
    def test_vanilla_cells(self, function):
        summary = startup(function, "vanilla")
        assert summary.median_ms == pytest.approx(
            self.PAPER[(function, "vanilla")], rel=0.05)

    @pytest.mark.parametrize("function", [
        "synthetic-small", "synthetic-medium", "synthetic-big"])
    def test_nowarmup_cells(self, function):
        summary = startup(function, "prebake", policy=AfterReady())
        assert summary.median_ms == pytest.approx(
            self.PAPER[(function, "nowarmup")], rel=0.06)

    @pytest.mark.parametrize("function", [
        "synthetic-small", "synthetic-medium", "synthetic-big"])
    def test_warmup_cells(self, function):
        summary = startup(function, "prebake", policy=AfterWarmup(1))
        assert summary.median_ms == pytest.approx(
            self.PAPER[(function, "warmup")], rel=0.10)


class TestFigure6Calibration:
    """Speed-up ratios: 127%→404% (small), 121%→1932% (big)."""

    def test_small_ratios(self):
        vanilla = startup("synthetic-small", "vanilla").median_ms
        nowarm = startup("synthetic-small", "prebake", policy=AfterReady()).median_ms
        warm = startup("synthetic-small", "prebake", policy=AfterWarmup(1)).median_ms
        assert 100 * vanilla / nowarm == pytest.approx(127.45, abs=8.0)
        assert 100 * vanilla / warm == pytest.approx(403.96, abs=35.0)

    def test_big_ratios(self):
        vanilla = startup("synthetic-big", "vanilla").median_ms
        nowarm = startup("synthetic-big", "prebake", policy=AfterReady()).median_ms
        warm = startup("synthetic-big", "prebake", policy=AfterWarmup(1)).median_ms
        assert 100 * vanilla / nowarm == pytest.approx(121.07, abs=10.0)
        assert 100 * vanilla / warm == pytest.approx(1932.49, rel=0.08)

    def test_warm_speedup_grows_with_function_size(self):
        """Fig 6's headline: the gain grows as the function grows."""
        ratios = []
        for name in ("synthetic-small", "synthetic-medium", "synthetic-big"):
            vanilla = startup(name, "vanilla").median_ms
            warm = startup(name, "prebake", policy=AfterWarmup(1)).median_ms
            ratios.append(vanilla / warm)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_warm_startup_nearly_flat_across_sizes(self):
        """Table 1: warm restore grows only ~30ms from small to big
        while vanilla grows ~1400ms."""
        small = startup("synthetic-small", "prebake", policy=AfterWarmup(1)).median_ms
        big = startup("synthetic-big", "prebake", policy=AfterWarmup(1)).median_ms
        assert big - small < 45.0
