"""Tests for the sharded, replicated snapshot store (ISSUE 7).

Covers the hash ring, the circuit breaker, the quorum / hinted-handoff
/ read-repair / anti-entropy protocol, the degraded-mode restore
ladder through the platform, the RF=1 byte-identity guarantee, the X10
shard-chaos experiment, and the satellite items (eviction counter
export, ghost-history promotion, ``FaultPlan.of`` typo rejection).
"""

import pytest

from repro import make_world
from repro.core.bake import Prebaker
from repro.core.policy import AfterReady
from repro.core.starters import PrebakeStarter
from repro.core.store import SnapshotStore
from repro.criu.chunkcache import LRU, HotChunkCache
from repro.criu.shardstore import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    HashRing,
    ShardedSnapshotStore,
)
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faults.model import (
    STORE_NODE_DOWN,
    STORE_PARTITION,
    STORE_SLOW_SHARD,
    FaultPlan,
)
from repro.functions import make_app


# ---------------------------------------------------------------------------
# Hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_walk_yields_each_node_once(self):
        ring = HashRing([f"store-{i}" for i in range(5)])
        walked = list(ring.walk("some-chunk-digest"))
        assert sorted(walked) == [f"store-{i}" for i in range(5)]

    def test_nodes_for_returns_distinct_prefix(self):
        ring = HashRing(["a", "b", "c"], virtual_nodes=16)
        homes = ring.nodes_for("digest", 2)
        assert len(homes) == 2
        assert len(set(homes)) == 2

    def test_placement_is_deterministic_across_instances(self):
        names = [f"store-{i}" for i in range(4)]
        first = HashRing(names)
        second = HashRing(names)
        for digest in ("aa", "bb", "cc", "dd", "ee"):
            assert first.nodes_for(digest, 2) == second.nodes_for(digest, 2)

    def test_rejects_empty_ring_and_bad_virtual_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            HashRing([])
        with pytest.raises(ValueError, match="virtual_nodes"):
            HashRing(["a"], virtual_nodes=0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, reset_ms=1_000.0)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.record_failure(0.0)      # third failure opens
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(500.0)         # still cooling down

    def test_half_open_probe_then_close_on_success(self):
        breaker = CircuitBreaker(threshold=1, reset_ms=1_000.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1_000.0)           # cooldown elapsed: probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.record_success()         # probe worked: closed
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=2, reset_ms=1_000.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1_500.0)
        assert breaker.record_failure(1_500.0)  # one strike in half-open
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(2_000.0)       # new cooldown from 1500

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, reset_ms=1_000.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        assert not breaker.record_failure(0.0)  # streak restarted
        assert breaker.state == BREAKER_CLOSED


# ---------------------------------------------------------------------------
# Placement, quorum fetch, handoff, read-repair, anti-entropy
# ---------------------------------------------------------------------------


def _baked_layered(kernel, name="markdown"):
    store = SnapshotStore()
    report = Prebaker(kernel, store).bake(make_app(name), policy=AfterReady())
    return store.layered(report.key), store.merkle(report.key)


class TestShardedSnapshotStore:
    def test_replication_factor_bounds(self, kernel):
        with pytest.raises(ValueError, match="replication_factor"):
            ShardedSnapshotStore(kernel, node_count=3, replication_factor=4)
        with pytest.raises(ValueError, match="replication_factor"):
            ShardedSnapshotStore(kernel, node_count=3, replication_factor=0)

    def test_register_places_rf_copies_on_every_window(self, kernel):
        layered, _ = _baked_layered(kernel)
        store = ShardedSnapshotStore(kernel, node_count=5,
                                     replication_factor=2)
        store.register_image(layered)
        assert store.has_image(layered.image_id)
        for ref in layered.chunk_refs:
            assert store.replica_count(ref.chunk_id) == 2

    def test_placement_spreads_over_all_nodes(self, kernel):
        layered, _ = _baked_layered(kernel)
        store = ShardedSnapshotStore(kernel, node_count=5,
                                     replication_factor=1)
        store.register_image(layered)
        balance = store.balance()
        assert len(balance) == 5
        # Snapshot windows dedup to a modest set of distinct digests,
        # so demand a spread, not perfection: most nodes own data and
        # the stored bytes add up to exactly one copy of each digest.
        assert sum(1 for stored in balance.values() if stored > 0) >= 3
        distinct = {ref.chunk_id: ref.size_bytes
                    for ref in layered.chunk_refs}
        assert sum(balance.values()) == sum(distinct.values())

    def test_quorum_fetch_survives_one_down_replica(self, kernel):
        layered, _ = _baked_layered(kernel)
        store = ShardedSnapshotStore(kernel, node_count=5,
                                     replication_factor=2)
        store.register_image(layered)
        ref = layered.chunk_refs[0]
        homes = store.placement(ref.chunk_id)
        store.fail_node(homes[0], down_for_ms=60_000.0)
        result = store.fetch_window(ref.chunk_id, ref.size_bytes)
        assert result.found
        assert result.served_by == homes[1]
        assert result.retry_hops == 1
        assert result.degraded

    def test_rf1_fetch_fails_when_the_only_home_is_down(self, kernel):
        layered, _ = _baked_layered(kernel)
        store = ShardedSnapshotStore(kernel, node_count=3,
                                     replication_factor=1)
        store.register_image(layered)
        ref = layered.chunk_refs[0]
        (home,) = store.placement(ref.chunk_id)
        store.fail_node(home, down_for_ms=60_000.0)
        result = store.fetch_window(ref.chunk_id, ref.size_bytes)
        assert not result.found
        assert result.retry_hops == 1

    def test_breaker_stops_charging_hops_for_a_dead_node(self, kernel):
        layered, _ = _baked_layered(kernel)
        store = ShardedSnapshotStore(kernel, node_count=3,
                                     replication_factor=1,
                                     breaker_threshold=3,
                                     breaker_reset_ms=2_000.0)
        store.register_image(layered)
        ref = layered.chunk_refs[0]
        (home,) = store.placement(ref.chunk_id)
        store.fail_node(home, down_for_ms=600_000.0)
        for _ in range(3):                     # three hops open the breaker
            assert store.fetch_window(ref.chunk_id, ref.size_bytes).retry_hops == 1
        assert store.breakers[home].state == BREAKER_OPEN
        assert home in store.open_breakers()
        # An open breaker is skipped for free: no more retry hops.
        assert store.fetch_window(ref.chunk_id, ref.size_bytes).retry_hops == 0
        # After the cooldown a half-open probe pays one hop and re-opens.
        kernel.clock.advance(2_500.0)
        assert store.fetch_window(ref.chunk_id, ref.size_bytes).retry_hops == 1
        assert store.breakers[home].state == BREAKER_OPEN

    def test_hinted_handoff_delivers_on_recovery(self, kernel):
        layered, _ = _baked_layered(kernel)
        probe = ShardedSnapshotStore(kernel, node_count=4,
                                     replication_factor=1)
        ref = layered.chunk_refs[0]
        (home,) = probe.placement(ref.chunk_id)
        store = ShardedSnapshotStore(kernel, node_count=4,
                                     replication_factor=1)
        store.fail_node(home, down_for_ms=60_000.0)
        store.register_image(layered)          # write lands as hints
        assert store.handoffs > 0
        assert ref.chunk_id not in store.nodes[home].holdings
        carriers = [n for n in store.nodes.values()
                    if ref.chunk_id in n.hints]
        assert len(carriers) == 1
        assert carriers[0].hints[ref.chunk_id][0] == home
        store.recover_node(home)
        assert store.handoffs_delivered > 0
        assert ref.chunk_id in store.nodes[home].holdings
        assert not any(ref.chunk_id in n.hints for n in store.nodes.values())
        assert store.fetch_window(ref.chunk_id, ref.size_bytes).found

    def test_read_repair_refills_an_up_but_missing_replica(self, kernel):
        layered, _ = _baked_layered(kernel)
        store = ShardedSnapshotStore(kernel, node_count=5,
                                     replication_factor=2)
        store.register_image(layered)
        ref = layered.chunk_refs[0]
        homes = store.placement(ref.chunk_id)
        del store.nodes[homes[0]].holdings[ref.chunk_id]
        result = store.fetch_window(ref.chunk_id, ref.size_bytes)
        assert result.found
        assert result.read_repaired == 1
        assert ref.chunk_id in store.nodes[homes[0]].holdings
        assert store.replica_count(ref.chunk_id) == 2

    def test_anti_entropy_repairs_with_subtree_local_hash_work(self, kernel):
        layered, merkle = _baked_layered(kernel)
        store = ShardedSnapshotStore(kernel, node_count=5,
                                     replication_factor=2)
        store.register_image(layered, merkle=merkle)
        clean = store.anti_entropy()
        assert clean.windows_repaired == 0
        assert clean.hash_ops == 0             # fully replicated: no work
        assert clean.layers_skipped == clean.layers_checked
        ref = layered.chunk_refs[0]
        homes = store.placement(ref.chunk_id)
        del store.nodes[homes[0]].holdings[ref.chunk_id]
        repair = store.anti_entropy()
        assert repair.windows_repaired == 1
        assert repair.hash_ops > 0
        assert repair.layers_skipped < repair.layers_checked
        assert store.replica_count(ref.chunk_id) == 2
        assert merkle.root_matches_seal()      # digest unchanged by repair

    def test_anti_entropy_counts_deficits_it_cannot_repair(self, kernel):
        layered, merkle = _baked_layered(kernel)
        store = ShardedSnapshotStore(kernel, node_count=5,
                                     replication_factor=2)
        store.register_image(layered, merkle=merkle)
        ref = layered.chunk_refs[0]
        homes = store.placement(ref.chunk_id)
        del store.nodes[homes[0]].holdings[ref.chunk_id]
        store.fail_node(homes[0], down_for_ms=600_000.0)
        report = store.anti_entropy()
        assert report.under_replicated >= 1
        assert ref.chunk_id not in store.nodes[homes[0]].holdings


# ---------------------------------------------------------------------------
# Degraded-mode restores through the platform
# ---------------------------------------------------------------------------


def _sharded_platform(seed=42, rf=2, storage_nodes=5):
    world = make_world(seed=seed, observe=True)
    platform = FaaSPlatform(world.kernel, PlatformConfig(
        nodes=2, storage_nodes=storage_nodes, replication_factor=rf))
    platform.register_function(lambda: make_app("markdown"),
                               start_technique="prebake")
    return world, platform


class TestDegradedRestores:
    def test_rf2_cold_start_survives_a_node_kill_without_fallback(self):
        world, platform = _sharded_platform(rf=2)
        kernel = world.kernel
        assert platform.invoke("markdown").status == 200
        platform.deployer.terminate_all("markdown")
        platform.shard_store.fail_node("store-0", down_for_ms=600_000.0)
        response = platform.invoke("markdown")
        assert response.status == 200
        metrics = kernel.obs.metrics
        assert metrics.value("restore_degraded_total") >= 1
        assert metrics.value("prebake_fallback_total") == 0
        assert metrics.value("shard_fetch_retry_hops_total") >= 1

    def test_rf1_node_kill_rides_the_fallback_ladder(self):
        world, platform = _sharded_platform(rf=1)
        kernel = world.kernel
        assert platform.invoke("markdown").status == 200
        platform.deployer.terminate_all("markdown")
        # Kill the node holding the most of this image; with RF=1 its
        # windows are unobtainable, so prebake must fall back.
        balance = platform.shard_store.balance()
        victim = max(balance, key=balance.get)
        platform.shard_store.fail_node(victim, down_for_ms=600_000.0)
        response = platform.invoke("markdown")
        assert response.status == 200          # vanilla start saved it
        metrics = kernel.obs.metrics
        assert metrics.value("prebake_fallback_total") >= 1
        assert metrics.value(
            "criu_restore_failures_total", {"reason": "shard"}) >= 1

    def test_rf1_single_node_store_is_byte_identical_to_unsharded(self):
        """The acceptance pin: a clean single-shard RF=1 store charges
        the exact unsharded restore costs — same seeds, same clock."""
        sequences = []
        for sharded in (False, True):
            world = make_world(seed=42)
            kernel = world.kernel
            store = SnapshotStore()
            prebaker = Prebaker(kernel, store)
            report = prebaker.bake(make_app("markdown"), policy=AfterReady())
            shard_store = None
            if sharded:
                shard_store = ShardedSnapshotStore(kernel, node_count=1,
                                                   replication_factor=1)
                shard_store.register_image(store.layered(report.key),
                                           merkle=store.merkle(report.key))
            starter = PrebakeStarter(kernel, store, policy=AfterReady(),
                                     shard_store=shard_store)
            sequences.append([
                starter.start(make_app("markdown")).startup_ms("ready")
                for _ in range(5)
            ])
        assert sequences[0] == sequences[1]


# ---------------------------------------------------------------------------
# X10 shard-chaos experiment
# ---------------------------------------------------------------------------


class TestShardChaosExperiment:
    def test_rf2_node_kills_cause_zero_failed_requests(self):
        from repro.bench.shard_chaos import shard_chaos_experiment
        result = shard_chaos_experiment(
            replication_factors=(2,), failure_rates=(0.0, 0.5),
            repetitions=2, requests_per_rep=4)
        assert result.failed_at_rf2_plus() == 0
        faulty = result.treatment(2, 0.5)
        assert faulty.requests == 8
        assert faulty.successes == 8
        assert faulty.degraded_restores + faulty.fallbacks >= 1
        rendered = result.render()
        assert "RF>=2 failed requests: 0" in rendered
        assert "fault schedule digest:" in rendered

    def test_sweep_is_deterministic_for_a_seed(self):
        from repro.bench.shard_chaos import shard_chaos_experiment
        runs = [
            shard_chaos_experiment(replication_factors=(2,),
                                   failure_rates=(0.5,),
                                   repetitions=1, requests_per_rep=3)
            for _ in range(2)
        ]
        assert runs[0].render() == runs[1].render()
        assert runs[0].sweep_digest() == runs[1].sweep_digest()


# ---------------------------------------------------------------------------
# Satellites: eviction counter, ghost promotion, FaultPlan.of typos
# ---------------------------------------------------------------------------


class TestNodeCacheEvictionCounter:
    def test_layer_pull_evictions_are_exported_per_node(self):
        world, platform = _sharded_platform(rf=1, storage_nodes=1)
        kernel = world.kernel
        # Pin both node caches far below the snapshot size so the pull
        # accounting must evict (LRU admits unconditionally).
        for node in ("node-0", "node-1"):
            platform.deployer._node_chunk_cache[node] = HotChunkCache(
                capacity_bytes=256 * 1024, policy=LRU)
        platform.invoke("markdown")
        metrics = kernel.obs.metrics
        total = metrics.value("deployer_node_cache_eviction_total")
        assert total > 0
        per_node = sum(
            metrics.value("deployer_node_cache_eviction_total",
                          {"node": node})
            for node in ("node-0", "node-1"))
        assert per_node == total               # always labeled by node

    def test_counter_exports_deltas_not_running_totals(self):
        world, platform = _sharded_platform(rf=1, storage_nodes=1)
        kernel = world.kernel
        for node in ("node-0", "node-1"):
            platform.deployer._node_chunk_cache[node] = HotChunkCache(
                capacity_bytes=256 * 1024, policy=LRU)
        platform.invoke("markdown")
        first = kernel.obs.metrics.value("deployer_node_cache_eviction_total")
        platform.deployer.terminate_all("markdown")
        platform.invoke("markdown")
        second = kernel.obs.metrics.value("deployer_node_cache_eviction_total")
        caches = platform.deployer._node_chunk_cache.values()
        true_evictions = sum(c.stats.evictions for c in caches)
        assert second >= first
        assert second == true_evictions        # delta export, no double count


class TestGhostHistoryPromotion:
    def test_repeated_layer_pulls_promote_a_rejected_chunk(self):
        """freq-over-size keeps frequency for non-resident chunks, so
        a layer pulled often enough displaces a colder resident one."""
        cache = HotChunkCache(capacity_bytes=100)
        hot_layer = [("chunk-hot", 60)]
        cold_layer = [("chunk-cold", 60)]
        for _ in range(3):                     # hot layer pulled 3 times
            for cid, size in hot_layer:
                cache.lookup(cid, size)
        assert cache.contains("chunk-hot")
        # First two pulls of the other layer: score 1/60 then 2/60
        # never beats the resident 3/60, so admission rejects — but the
        # ghost history remembers each attempt.
        for expected_reject in (1, 2):
            for cid, size in cold_layer:
                assert not cache.lookup(cid, size)
            assert not cache.contains("chunk-cold")
            assert cache.stats.admission_rejects == expected_reject
        # Third pull: the ghost frequency ties the resident score and
        # the newcomer wins the slot.
        for cid, size in cold_layer:
            cache.lookup(cid, size)
        assert cache.contains("chunk-cold")
        assert not cache.contains("chunk-hot")
        assert cache.stats.evictions == 1

    def test_ghost_history_survives_while_not_resident(self):
        cache = HotChunkCache(capacity_bytes=100)
        cache.lookup("resident", 80)
        for _ in range(5):
            cache.lookup("ghost", 90)          # never fits alongside
        # The ghost's remembered frequency lets it take over the cache
        # in one admission once it finally beats the resident score.
        assert cache.contains("ghost")
        assert not cache.contains("resident")


class TestFaultPlanOf:
    def test_unknown_site_keyword_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.of(bogus_site=0.5)

    def test_typo_of_a_real_site_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.of(store_node_downn=0.5)

    def test_store_sites_map_through_underscore_keywords(self):
        plan = FaultPlan.of(store_node_down=0.2, store_partition=0.1,
                            store_slow_shard=0.3)
        assert plan.specs[STORE_NODE_DOWN].probability == 0.2
        assert plan.specs[STORE_PARTITION].probability == 0.1
        assert plan.specs[STORE_SLOW_SHARD].probability == 0.3
