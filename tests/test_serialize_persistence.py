"""Tests for snapshot serialization and the evicting/archiving store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_world
from repro.core.bake import Prebaker
from repro.core.persistence import (
    DirBackend,
    EvictingSnapshotStore,
    SnapshotArchive,
    VfsBackend,
)
from repro.core.policy import AfterWarmup
from repro.core.starters import PrebakeStarter
from repro.core.store import SnapshotKey, SnapshotNotFound
from repro.criu.checkpoint import CheckpointEngine
from repro.criu.serialize import (
    SerializationError,
    deserialize_image,
    serialize_image,
)
from repro.functions import make_app
from repro.osproc.memory import PAGE_SIZE, VMAKind
from repro.runtime.base import Request


def dump_process(kernel, mib=1.0, warm=False):
    proc = kernel.clone(kernel.init_process, comm="subject")
    proc.address_space.grow_anon("heap", mib, content_tag="h")
    return CheckpointEngine(kernel).dump(proc, leave_running=False, warm=warm)


class TestSerializeRoundTrip:
    def test_basic_roundtrip(self, kernel):
        image = dump_process(kernel, 2.0, warm=True)
        clone = deserialize_image(serialize_image(image))
        assert clone.image_id == image.image_id
        assert clone.pid == image.pid
        assert clone.comm == image.comm
        assert clone.warm is True
        assert clone.resident_pages == image.resident_pages
        assert clone.total_bytes == image.total_bytes
        assert [v.label for v in clone.vmas] == [v.label for v in image.vmas]

    def test_roundtrip_preserves_page_tags(self, kernel):
        image = dump_process(kernel, 0.5)
        clone = deserialize_image(serialize_image(image))
        for original, restored in zip(image.vmas, clone.vmas):
            assert restored.resident_indices == original.resident_indices
            assert restored.content_tags == original.content_tags

    def test_roundtrip_with_runtime_state(self, kernel):
        prebaker = Prebaker(kernel)
        app = make_app("synthetic-small")
        report = prebaker.bake(app, policy=AfterWarmup(1))
        clone = deserialize_image(serialize_image(report.image))
        state = clone.runtime_state
        assert state["kind"] == "jvm"
        assert state["ready"] is True
        assert state["app"].name == "synthetic-small"
        assert len(state["extra"]["loaded_class_names"]) == 374

    def test_deserialized_image_restores(self, kernel):
        prebaker = Prebaker(kernel)
        app = make_app("markdown")
        report = prebaker.bake(app, policy=AfterWarmup(1))
        clone = deserialize_image(serialize_image(report.image))
        from repro.criu.restore import RestoreEngine
        proc = RestoreEngine(kernel).restore(clone)
        runtime = proc.payload["runtime"]
        assert runtime.ready
        response = runtime.handle(Request(body="# s11n"))
        assert "<h1>s11n</h1>" in response.body

    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError, match="magic"):
            deserialize_image(b"NOTANIMG" + b"\x00" * 64)

    def test_truncated_rejected(self, kernel):
        blob = serialize_image(dump_process(kernel))
        with pytest.raises(SerializationError, match="truncated|short"):
            deserialize_image(blob[:20])

    def test_bad_version_rejected(self, kernel):
        blob = bytearray(serialize_image(dump_process(kernel)))
        blob[8:10] = (99).to_bytes(2, "big")
        with pytest.raises(SerializationError, match="version"):
            deserialize_image(bytes(blob))

    def test_corrupt_header_rejected(self, kernel):
        blob = bytearray(serialize_image(dump_process(kernel)))
        blob[20] ^= 0xFF
        with pytest.raises(SerializationError):
            deserialize_image(bytes(blob))

    def test_rle_compression_effective(self, kernel):
        """Contiguous same-tag pages must not serialize per-page."""
        image = dump_process(kernel, 50.0)  # 12800 pages, one tag
        blob = serialize_image(image)
        assert len(blob) < 8 * 1024  # tiny header, not per-page records

    @given(layout=st.lists(
        st.tuples(st.integers(1, 32), st.integers(0, 32)),
        min_size=1, max_size=5,
    ), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, layout, seed):
        world = make_world(seed=seed)
        kernel = world.kernel
        proc = kernel.clone(kernel.init_process)
        for i, (pages, resident) in enumerate(layout):
            vma = proc.address_space.mmap(pages * PAGE_SIZE, VMAKind.ANON,
                                          label=f"v{i}")
            vma.touch_range(0, min(resident, pages), content_tag=f"t{i % 3}")
        image = CheckpointEngine(kernel).dump(proc, leave_running=False)
        clone = deserialize_image(serialize_image(image))
        assert clone.resident_pages == image.resident_pages
        for original, restored in zip(image.vmas, clone.vmas):
            assert restored == original


class TestArchive:
    def test_vfs_archive_roundtrip(self, kernel):
        archive = SnapshotArchive(VfsBackend(kernel.fs))
        key = SnapshotKey("fn", "jvm", "after-ready")
        image = dump_process(kernel, 1.0)
        size = archive.save(key, image)
        assert size > 0
        assert archive.contains(key)
        loaded = archive.load(key)
        assert loaded.resident_pages == image.resident_pages
        archive.delete(key)
        assert not archive.contains(key)

    def test_dir_archive_roundtrip(self, kernel, tmp_path):
        archive = SnapshotArchive(DirBackend(str(tmp_path)))
        key = SnapshotKey("fn", "jvm", "after-ready")
        image = dump_process(kernel, 1.0)
        archive.save(key, image)
        assert len(archive) == 1
        loaded = archive.load(key)
        assert loaded.comm == image.comm

    def test_dir_archive_missing(self, tmp_path):
        archive = SnapshotArchive(DirBackend(str(tmp_path)))
        with pytest.raises(SnapshotNotFound):
            archive.load(SnapshotKey("ghost", "jvm", "after-ready"))

    def test_save_overwrites(self, kernel):
        archive = SnapshotArchive(VfsBackend(kernel.fs))
        key = SnapshotKey("fn", "jvm", "after-ready")
        archive.save(key, dump_process(kernel, 1.0))
        bigger = dump_process(kernel, 2.0)
        archive.save(key, bigger)
        assert archive.load(key).resident_pages == bigger.resident_pages


class TestEvictingStore:
    def _key(self, name, version=1):
        return SnapshotKey(name, "jvm", "after-ready", version)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EvictingSnapshotStore(0.0)

    def test_oversized_snapshot_rejected(self, kernel):
        store = EvictingSnapshotStore(capacity_mib=1.0)
        with pytest.raises(ValueError, match="exceeds"):
            store.put(self._key("big"), dump_process(kernel, 5.0))

    def test_evicts_lru_to_archive(self, kernel):
        archive = SnapshotArchive(VfsBackend(kernel.fs))
        store = EvictingSnapshotStore(capacity_mib=5.0, archive=archive)
        a, b, c = (self._key(n) for n in "abc")
        store.put(a, dump_process(kernel, 2.0))
        store.put(b, dump_process(kernel, 2.0))
        store.get(a)  # a is now more recently used than b
        store.put(c, dump_process(kernel, 2.0))  # evicts b
        assert store.evictions == 1
        assert archive.contains(b)
        assert store.total_mib <= 5.0

    def test_fault_back_from_archive(self, kernel):
        archive = SnapshotArchive(VfsBackend(kernel.fs))
        store = EvictingSnapshotStore(capacity_mib=5.0, archive=archive)
        a, b, c = (self._key(n) for n in "abc")
        for key in (a, b, c):
            store.put(key, dump_process(kernel, 2.0))
        # a was evicted; getting it faults it back (evicting another).
        image = store.get(a)
        assert image.comm == "subject"
        assert store.faults == 1

    def test_get_missing_everywhere(self, kernel):
        store = EvictingSnapshotStore(
            capacity_mib=5.0, archive=SnapshotArchive(VfsBackend(kernel.fs)))
        with pytest.raises(SnapshotNotFound):
            store.get(self._key("ghost"))

    def test_eviction_without_archive_drops(self, kernel):
        store = EvictingSnapshotStore(capacity_mib=4.0)
        a, b = self._key("a"), self._key("b")
        store.put(a, dump_process(kernel, 2.0))
        store.put(b, dump_process(kernel, 2.5))
        assert store.evictions == 1
        with pytest.raises(SnapshotNotFound):
            store.get(a)

    def test_contains_checks_archive(self, kernel):
        archive = SnapshotArchive(VfsBackend(kernel.fs))
        store = EvictingSnapshotStore(capacity_mib=4.0, archive=archive)
        a, b = self._key("a"), self._key("b")
        store.put(a, dump_process(kernel, 2.0))
        store.put(b, dump_process(kernel, 2.5))  # a spills
        assert store.contains(a)

    def test_delete_clears_both_tiers(self, kernel):
        archive = SnapshotArchive(VfsBackend(kernel.fs))
        store = EvictingSnapshotStore(capacity_mib=10.0, archive=archive)
        key = self._key("a")
        image = dump_process(kernel, 2.0)
        store.put(key, image)
        archive.save(key, image)
        store.delete(key)
        assert not store.contains(key)
        assert not archive.contains(key)

    def test_works_with_prebake_starter(self, kernel):
        """The evicting store drops into the standard restore path."""
        archive = SnapshotArchive(VfsBackend(kernel.fs))
        store = EvictingSnapshotStore(capacity_mib=200.0, archive=archive)
        prebaker = Prebaker(kernel, store)
        app = make_app("noop")
        prebaker.bake(app)
        starter = PrebakeStarter(kernel, store)
        handle = starter.start(app)
        assert handle.runtime.ready
