"""Tests for the memory cgroup controller and its platform wiring."""

import pytest

from repro.faas import FaaSPlatform
from repro.faas.replica import ReplicaState
from repro.functions.base import FunctionApp
from repro.functions import register_app
from repro.osproc.cgroups import CgroupError, CgroupManager, MemoryCgroup
from repro.sim.costmodel import synthetic_costs


@pytest.fixture
def manager_cg(kernel):
    return CgroupManager(kernel)


def spawn(kernel, mib=1.0, comm="worker"):
    proc = kernel.clone(kernel.init_process, comm=comm)
    proc.address_space.grow_anon("heap", mib)
    return proc


class TestMemoryCgroup:
    def test_usage_sums_member_rss(self, kernel):
        group = MemoryCgroup(kernel, "g", limit_mib=100.0)
        group.attach(spawn(kernel, 2.0))
        group.attach(spawn(kernel, 3.0))
        assert group.usage_mib == pytest.approx(5.0)

    def test_attach_dead_rejected(self, kernel):
        group = MemoryCgroup(kernel, "g")
        proc = spawn(kernel)
        kernel.kill(proc.pid)
        with pytest.raises(CgroupError):
            group.attach(proc)

    def test_invalid_limit_rejected(self, kernel):
        with pytest.raises(CgroupError):
            MemoryCgroup(kernel, "g", limit_mib=0.0)

    def test_dead_members_drop_out(self, kernel):
        group = MemoryCgroup(kernel, "g")
        proc = spawn(kernel, 2.0)
        group.attach(proc)
        kernel.kill(proc.pid)
        assert group.members() == []
        assert group.usage_mib == 0.0

    def test_unlimited_never_enforces(self, kernel):
        group = MemoryCgroup(kernel, "g", limit_mib=None)
        group.attach(spawn(kernel, 500.0))
        assert group.enforce() == []

    def test_enforce_kills_largest_first(self, kernel):
        group = MemoryCgroup(kernel, "g", limit_mib=4.0)
        small = spawn(kernel, 2.0, comm="small")
        big = spawn(kernel, 3.0, comm="big")
        group.attach(small)
        group.attach(big)
        events = group.enforce()
        assert [e.comm for e in events] == ["big"]
        assert not big.alive
        assert small.alive

    def test_enforce_kills_until_under_limit(self, kernel):
        group = MemoryCgroup(kernel, "g", limit_mib=1.5)
        procs = [spawn(kernel, 1.0) for _ in range(3)]
        events = group.enforce()
        # Nothing attached yet → no kills.
        assert events == []
        for proc in procs:
            group.attach(proc)
        events = group.enforce()
        assert len(events) == 2
        assert group.usage_mib <= 1.5

    def test_under_limit_no_kill(self, kernel):
        group = MemoryCgroup(kernel, "g", limit_mib=10.0)
        proc = spawn(kernel, 2.0)
        group.attach(proc)
        assert group.enforce() == []
        assert proc.alive

    def test_peak_tracking(self, kernel):
        group = MemoryCgroup(kernel, "g", limit_mib=100.0)
        proc = spawn(kernel, 2.0)
        group.attach(proc)
        _ = group.usage_mib
        proc.address_space.grow_anon("more", 5.0)
        _ = group.usage_mib
        assert group.peak_mib == pytest.approx(7.0, abs=0.1)


class TestCgroupManager:
    def test_create_get_remove(self, manager_cg):
        manager_cg.create("a", limit_mib=10.0)
        assert manager_cg.get("a").limit_mib == 10.0
        manager_cg.remove("a")
        with pytest.raises(CgroupError):
            manager_cg.get("a")

    def test_duplicate_rejected(self, manager_cg):
        manager_cg.create("a")
        with pytest.raises(CgroupError, match="already exists"):
            manager_cg.create("a")

    def test_remove_with_members_rejected(self, manager_cg, kernel):
        group = manager_cg.create("a")
        group.attach(spawn(kernel))
        with pytest.raises(CgroupError, match="still has members"):
            manager_cg.remove("a")

    def test_enforce_all(self, manager_cg, kernel):
        tight = manager_cg.create("tight", limit_mib=0.5)
        loose = manager_cg.create("loose", limit_mib=100.0)
        tight.attach(spawn(kernel, 2.0))
        loose.attach(spawn(kernel, 2.0))
        events = manager_cg.enforce_all()
        assert len(events) == 1
        assert events[0].cgroup == "tight"


class HungryFunction(FunctionApp):
    """Grows its heap massively on every request (an OOM magnet)."""

    def __init__(self) -> None:
        profile = synthetic_costs("hungry", classes=1, class_kib=4.0,
                                  base_rss_mib=13.0, service_ms=1.0)
        super().__init__(profile)
        self.classes = []

    def execute(self, runtime, request):
        runtime.grow_heap(500.0)
        return "grew", 200


register_app("hungry", HungryFunction)


class TestPlatformOomIntegration:
    def test_replica_gets_cgroup(self, kernel):
        platform = FaaSPlatform(kernel)
        platform.register_function(HungryFunction, max_replicas=4)
        replica = platform.deployer.provision("hungry")
        assert replica.cgroup is not None
        assert replica.cgroup.limit_mib > 0
        assert replica.handle.process in replica.cgroup.members()

    def test_oom_kill_on_runaway_growth(self, kernel):
        platform = FaaSPlatform(kernel)
        platform.register_function(HungryFunction, max_replicas=8)
        # Each request adds 500 MiB against a ~64-128 MiB limit: the
        # first response still succeeds (OOM is post-request, like the
        # async OOM killer) but the replica dies.
        response = platform.invoke("hungry")
        assert response.ok
        assert platform.deployer.replicas("hungry") == []
        replica_events = platform.deployer.cgroups.enforce_all()
        assert replica_events == []  # already enforced during serve

    def test_platform_recovers_after_oom(self, kernel):
        platform = FaaSPlatform(kernel)
        platform.register_function(HungryFunction, max_replicas=8)
        platform.invoke("hungry")
        response = platform.invoke("hungry")  # fresh replica, cold start
        assert response.ok
        assert platform.router.stats.cold_starts == 2
