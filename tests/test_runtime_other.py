"""Tests for the CPython and Node.js runtime models (paper §7)."""

import pytest

from repro.functions.base import FunctionApp
from repro.runtime.base import Request
from repro.runtime.nodejs import NodeJSRuntime
from repro.runtime.python_rt import CPythonRuntime
from repro.sim.costmodel import synthetic_costs
from repro.runtime.classes import generate_classes


class PyApp(FunctionApp):
    runtime_kind = "python"

    def __init__(self, modules: int = 0, kib: float = 0.0):
        profile = synthetic_costs("py-fn", classes=max(modules, 1),
                                  class_kib=max(kib, 1.0), base_rss_mib=7.0)
        super().__init__(profile)
        self.classes = generate_classes(modules, kib) if modules else []

    def execute(self, runtime, request):
        return "py-ok", 200


class NodeApp(FunctionApp):
    runtime_kind = "nodejs"

    def __init__(self, modules: int = 0, kib: float = 0.0):
        profile = synthetic_costs("node-fn", classes=max(modules, 1),
                                  class_kib=max(kib, 1.0), base_rss_mib=10.0)
        super().__init__(profile)
        self.classes = generate_classes(modules, kib) if modules else []

    def execute(self, runtime, request):
        return "node-ok", 200


def launch(kernel, runtime_cls, app, binary):
    kernel.fs.ensure(binary, size=64 * 1024)
    proc = kernel.clone(kernel.init_process)
    kernel.execve(proc, binary)
    runtime = runtime_cls(kernel, proc)
    runtime.boot()
    runtime.load_application(app)
    return runtime


class TestCPythonRuntime:
    def test_boot_cheaper_than_jvm(self, quiet_kernel):
        t0 = quiet_kernel.clock.now
        launch(quiet_kernel, CPythonRuntime, PyApp(), "/usr/bin/python3")
        elapsed = quiet_kernel.clock.now - t0
        assert elapsed < 40.0  # vs ~77ms for the JVM path

    def test_handles_requests(self, kernel):
        runtime = launch(kernel, CPythonRuntime, PyApp(), "/usr/bin/python3")
        response = runtime.handle(Request())
        assert response.ok and response.body == "py-ok"

    def test_imports_on_first_request(self, kernel):
        app = PyApp(modules=50, kib=200.0)
        runtime = launch(kernel, CPythonRuntime, app, "/usr/bin/python3")
        assert runtime.imported_modules == 0
        runtime.handle(Request())
        assert runtime.imported_modules == 50

    def test_snapshot_state_roundtrip_fields(self, kernel):
        app = PyApp(modules=10, kib=50.0)
        runtime = launch(kernel, CPythonRuntime, app, "/usr/bin/python3")
        runtime.handle(Request())
        state = runtime.snapshot_state()
        assert state["kind"] == "python"
        assert state["extra"]["imported_modules"] == 10
        assert state["extra"]["source_path"]


class TestNodeJSRuntime:
    def test_boot_between_python_and_jvm(self, quiet_kernel):
        t0 = quiet_kernel.clock.now
        launch(quiet_kernel, NodeJSRuntime, NodeApp(), "/usr/bin/node")
        elapsed = quiet_kernel.clock.now - t0
        assert 40.0 < elapsed < 70.0

    def test_handles_requests(self, kernel):
        runtime = launch(kernel, NodeJSRuntime, NodeApp(), "/usr/bin/node")
        assert runtime.handle(Request()).body == "node-ok"

    def test_requires_on_first_request(self, kernel):
        app = NodeApp(modules=30, kib=120.0)
        runtime = launch(kernel, NodeJSRuntime, app, "/usr/bin/node")
        runtime.handle(Request())
        assert runtime.required_modules == 30

    def test_warm_bundle_cheaper(self, quiet_kernel):
        app = NodeApp(modules=100, kib=2000.0)
        runtime = launch(quiet_kernel, NodeJSRuntime, app, "/usr/bin/node")
        bundle = quiet_kernel.fs.lookup(runtime.bundle_path)
        quiet_kernel.page_cache.warm(bundle)
        t0 = quiet_kernel.clock.now
        runtime.handle(Request())
        warm_elapsed = quiet_kernel.clock.now - t0

        # Fresh cold run for comparison.
        from repro import make_world
        from repro.sim.costmodel import DEFAULT_COST_MODEL
        world = make_world(seed=5, costs=DEFAULT_COST_MODEL.with_noise_sigma(0.0))
        app2 = NodeApp(modules=100, kib=2000.0)
        runtime2 = launch(world.kernel, NodeJSRuntime, app2, "/usr/bin/node")
        t0 = world.kernel.clock.now
        runtime2.handle(Request())
        cold_elapsed = world.kernel.clock.now - t0
        assert warm_elapsed < cold_elapsed
