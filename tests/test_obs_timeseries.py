"""Windowed time-series rollups, including the tape-replay invariant.

The hypothesis property here is the load-bearing one: for *any*
deterministic sample stream, replaying the flight tape's METRIC_SAMPLE
events through :func:`repro.obs.timeseries.replay_events` reconstructs
window rollups identical to the live table's — which is what makes a
postmortem bundle's metric windows reproducible from its recipe.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_world, obs
from repro.obs.flight import FlightRecorder, METRIC_SAMPLE
from repro.obs.timeseries import (
    COUNTER_SAMPLE,
    TimeseriesTable,
    VALUE_SAMPLE,
    WindowedSeries,
    replay_events,
)


class TestWindowedSeries:
    def test_windows_align_to_t0_and_keep_interior_gaps(self):
        series = WindowedSeries("latency_ms")
        for at_ms, value in [(50.0, 1.0), (150.0, 2.0), (850.0, 3.0)]:
            series.record(at_ms, value)
        windows = series.windows(100.0)
        # [0,100) .. [800,900): leading window populated, interior
        # empties kept so the curve shows the gap.
        assert windows[0].start_ms == 0.0
        assert windows[-1].end_ms == 900.0
        assert len(windows) == 9
        assert [w.count for w in windows] == [1, 1, 0, 0, 0, 0, 0, 0, 1]

    def test_window_stats_are_numpy_exact(self):
        series = WindowedSeries("latency_ms")
        values = [5.0, 1.0, 9.0, 3.0]
        for index, value in enumerate(values):
            series.record(10.0 * index, value)
        (window,) = series.windows(100.0)
        assert window.count == 4
        assert window.total == 18.0
        assert window.mean == pytest.approx(4.5)
        assert window.min_value == 1.0
        assert window.max_value == 9.0
        assert window.p50 == pytest.approx(np.percentile(values, 50))
        assert window.p99 == pytest.approx(np.percentile(values, 99))

    def test_ring_is_bounded(self):
        series = WindowedSeries("latency_ms", capacity=3)
        for index in range(10):
            series.record(float(index), float(index))
        assert len(series) == 3
        assert series.total_samples == 10
        assert [v for _, v in series.samples()] == [7.0, 8.0, 9.0]

    def test_values_between_is_half_open(self):
        series = WindowedSeries("latency_ms")
        series.record(100.0, 1.0)
        series.record(200.0, 2.0)
        assert series.values_between(100.0, 200.0) == [1.0]


class TestTimeseriesTable:
    def test_helpers_feed_the_table(self):
        kernel = make_world(seed=4, observe=True).kernel
        table = obs.enable_timeseries(kernel, window_ms=100.0)
        kernel.clock.advance(30.0)
        obs.observe(kernel, "criu_restore_duration_ms", 52.0)
        obs.count(kernel, "criu_restore_total")
        assert table.series("criu_restore_duration_ms").kind == VALUE_SAMPLE
        assert table.series("criu_restore_total").kind == COUNTER_SAMPLE
        (window,) = table.windows("criu_restore_duration_ms")
        assert window.p50 == 52.0

    def test_windowed_rate_none_without_denominator(self):
        table = TimeseriesTable(window_ms=100.0)
        assert table.windowed_rate("bad", "total", 0.0, 100.0) is None
        table.record("total", 10.0, 1.0, kind=COUNTER_SAMPLE)
        table.record("bad", 20.0, 1.0, kind=COUNTER_SAMPLE)
        assert table.windowed_rate("bad", "total", 0.0, 100.0) == 1.0
        assert table.windowed_rate("bad", "total", 100.0, 200.0) is None

    def test_rollup_is_json_ready(self):
        table = TimeseriesTable(window_ms=100.0)
        table.record("latency_ms", 10.0, 5.0)
        rollup = table.rollup()
        (window,) = rollup["latency_ms"]
        assert window["count"] == 1
        assert set(window) == {"start_ms", "end_ms", "count", "sum", "mean",
                               "min", "max", "p50", "p99"}


SAMPLE_STREAMS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10_000.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["latency_ms", "restores_total", "hits_total"]),
    ),
    min_size=0, max_size=60,
)


class TestTapeReplayProperty:
    @settings(max_examples=60, deadline=None)
    @given(stream=SAMPLE_STREAMS, window_ms=st.sampled_from([50.0, 500.0]))
    def test_replaying_tape_reconstructs_identical_rollups(
            self, stream, window_ms):
        """Live table and tape replay agree window-for-window."""
        clock = make_world(seed=1).kernel.clock
        recorder = FlightRecorder(clock, capacity=len(stream) + 1)
        live = TimeseriesTable(window_ms=window_ms)
        elapsed = 0.0
        for at_ms, value, metric in stream:
            if at_ms > elapsed:       # sim clocks only move forward
                clock.advance(at_ms - elapsed)
                elapsed = at_ms
            kind = (COUNTER_SAMPLE if metric.endswith("_total")
                    else VALUE_SAMPLE)
            live.record(metric, clock.now, value, kind=kind)
            recorder.record(METRIC_SAMPLE, metric=metric, value=value,
                            sample_kind=kind)
        replayed = replay_events(recorder.events(), window_ms=window_ms)
        assert replayed.names() == live.names()
        assert replayed.rollup() == live.rollup()
        for name in live.names():
            assert replayed.series(name).kind == live.series(name).kind

    def test_replay_ignores_non_metric_events(self):
        clock = make_world(seed=1).kernel.clock
        recorder = FlightRecorder(clock)
        recorder.record("request.admitted", request_id=1)
        recorder.record(METRIC_SAMPLE, metric="latency_ms", value=3.0)
        table = replay_events(recorder.events())
        assert table.names() == ["latency_ms"]
