"""Property tests for repro.predict: forecasters and prewarm policies."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predict.forecast import (
    AttentionForecaster,
    EwmaForecaster,
    InterArrivalHistogram,
)
from repro.predict.policy import (
    FixedKeepAlivePolicy,
    HistogramEwmaPolicy,
    LearnedPolicy,
    OraclePolicy,
    PrewarmConfig,
    PrewarmController,
    ReactivePolicy,
)


def _poisson_gaps(rate_per_ms: float, n: int, seed: int) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.exponential(1.0 / rate_per_ms, size=n)


class TestInterArrivalHistogram:
    @given(rate=st.floats(min_value=0.001, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_rate_converges_on_stationary_poisson_stream(self, rate, seed):
        hist = InterArrivalHistogram()
        for gap in _poisson_gaps(rate, 4000, seed):
            hist.note_gap(float(gap))
        estimate = hist.rate_per_ms()
        assert estimate is not None
        # Mean of 4000 exponential gaps: relative standard error
        # 1/sqrt(4000) ~ 1.6%; 10% is > 6 sigma.
        assert abs(estimate - rate) / rate < 0.10

    @given(rate=st.floats(min_value=0.001, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_quantile_edge_covers_the_requested_mass(self, rate, seed):
        gaps = _poisson_gaps(rate, 2000, seed)
        hist = InterArrivalHistogram()
        for gap in gaps:
            hist.note_gap(float(gap))
        edge = hist.quantile(0.9)
        assert edge is not None
        # The log2 bucket's upper edge must cover >= 90% of the sample.
        assert np.mean(gaps <= edge) >= 0.9

    def test_empty_histogram_has_no_answers(self):
        hist = InterArrivalHistogram()
        assert hist.quantile(0.9) is None
        assert hist.exact_quantile(0.5) is None
        assert hist.rate_per_ms() is None
        assert hist.keepalive_ms(0.9, 500.0, 30_000.0) == 500.0

    def test_negative_and_nonfinite_gaps_are_ignored(self):
        hist = InterArrivalHistogram()
        hist.note_gap(-1.0)
        hist.note_gap(float("nan"))
        hist.note_gap(float("inf"))
        assert hist.total == 0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            InterArrivalHistogram().quantile(0.0)
        with pytest.raises(ValueError):
            InterArrivalHistogram().quantile(1.5)


class TestEwmaForecaster:
    @given(rate=st.floats(min_value=0.5, max_value=50.0),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_converges_to_true_rate_on_stationary_poisson_counts(
            self, rate, seed):
        rng = np.random.Generator(np.random.PCG64(seed))
        ewma = EwmaForecaster(alpha=0.25)
        for count in rng.poisson(rate, size=800):
            ewma.observe(float(count))
        # Steady-state EWMA standard error: sqrt(alpha/(2-alpha)) of
        # the per-window sigma = sqrt(rate); 6 of those is a safe band.
        sigma = math.sqrt(0.25 / 1.75) * math.sqrt(rate)
        assert abs(ewma.forecast() - rate) < 6.0 * sigma + 1e-9

    def test_first_observation_seeds_the_average(self):
        ewma = EwmaForecaster()
        ewma.observe(10.0)
        assert ewma.forecast() == 10.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=1.5)


class TestAttentionForecaster:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           counts_seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bit_deterministic_for_fixed_seed(self, seed, counts_seed):
        rng = np.random.Generator(np.random.PCG64(counts_seed))
        counts = rng.poisson(4.0, size=120).astype(float)
        runs = []
        for _ in range(2):
            model = AttentionForecaster(horizon=32, seed=seed)
            for count in counts:
                model.observe(count)
            runs.append((model.forecast(), model.state_digest()))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    def test_different_seeds_give_different_projections(self):
        a = AttentionForecaster(seed=1)
        b = AttentionForecaster(seed=2)
        for count in (3.0, 5.0, 2.0, 7.0, 4.0):
            a.observe(count)
            b.observe(count)
        assert a.state_digest() != b.state_digest()

    @given(rate=st.floats(min_value=1.0, max_value=30.0),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_tracks_a_stationary_poisson_stream(self, rate, seed):
        rng = np.random.Generator(np.random.PCG64(seed))
        model = AttentionForecaster(horizon=32, seed=0)
        for count in rng.poisson(rate, size=600):
            model.observe(float(count))
        # The readout starts as the EWMA predictor and LMS only moves
        # it to reduce error, so on a stationary stream the forecast
        # stays in a Poisson-scaled band around the true rate.
        assert abs(model.forecast() - rate) < 6.0 * math.sqrt(rate) + 1.0

    def test_forecast_never_negative(self):
        model = AttentionForecaster(seed=0)
        for count in (50.0, 0.0, 0.0, 0.0, 0.0, 0.0):
            model.observe(count)
        assert model.forecast() >= 0.0

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            AttentionForecaster(horizon=1)
        with pytest.raises(ValueError):
            AttentionForecaster(d_model=0)


class TestPolicies:
    def test_reactive_never_holds_anything(self):
        policy = ReactivePolicy()
        policy.note_gap("f", 100.0)
        assert policy.keepalive_ms("f") == 0.0
        assert policy.target_warm("f") == 0
        assert policy.prewarm_schedule("f") is None

    def test_fixed_keepalive_is_constant(self):
        policy = FixedKeepAlivePolicy(keepalive_ms=45_000.0)
        assert policy.keepalive_ms("anything") == 45_000.0
        assert policy.target_warm("anything") == 0

    def test_histogram_policy_defaults_to_status_quo_without_data(self):
        policy = HistogramEwmaPolicy(default_keepalive_ms=60_000.0,
                                     keepalive_cap_ms=120_000.0)
        assert policy.keepalive_ms("new-fn") == 60_000.0

    def test_timer_function_scales_to_zero_and_gets_a_schedule(self):
        policy = HistogramEwmaPolicy(keepalive_cap_ms=30_000.0)
        for _ in range(12):
            policy.note_gap("timer", 180_000.0)
        assert policy.keepalive_ms("timer") == policy.keepalive_floor_ms
        schedule = policy.prewarm_schedule("timer")
        assert schedule is not None
        eta, hold = schedule
        assert 0 < eta < 180_000.0
        assert hold > 0

    def test_bursty_mixture_falls_back_to_the_default_keepalive(self):
        policy = HistogramEwmaPolicy(default_keepalive_ms=60_000.0,
                                     keepalive_cap_ms=120_000.0)
        # 97% intra-burst ~40ms gaps, 3% off gaps ~3 minutes: a broad
        # ON/OFF mixture the tail quantile can't serve.
        for _ in range(97):
            policy.note_gap("bursty", 40.0)
        for _ in range(3):
            policy.note_gap("bursty", 180_000.0)
        assert policy.keepalive_ms("bursty") == 60_000.0

    def test_ewma_target_scales_with_forecast(self):
        policy = HistogramEwmaPolicy(window_ms=1_000.0, service_ms=200.0,
                                     min_forecast=0.5)
        for _ in range(10):
            policy.observe_window("hot", 40.0)
        assert policy.target_warm("hot") >= 8  # load alone is 8
        assert policy.target_warm("idle-fn") == 0

    def test_learned_policy_is_seed_deterministic(self):
        outs = []
        for _ in range(2):
            policy = LearnedPolicy(window_ms=1_000.0, seed=7)
            for count in (3.0, 9.0, 1.0, 6.0, 4.0, 8.0):
                policy.observe_window("f", count)
            outs.append((policy.forecast("f"), policy.target_warm("f")))
        assert outs[0] == outs[1]

    def test_oracle_reads_the_next_window_off_the_trace(self):
        policy = OraclePolicy({"f": [4.0, 0.0, 2.0]}, window_ms=1_000.0,
                              service_ms=500.0)
        assert policy.target_warm("f") >= 2      # next window has 4
        assert policy.keepalive_ms("f") == 1_000.0
        policy.observe_window("f", 4.0)
        assert policy.target_warm("f") == 0      # next window is empty
        assert policy.keepalive_ms("f") == 0.0
        assert policy.prewarm_singletons

    def test_forecast_policies_do_not_place_singletons(self):
        assert not HistogramEwmaPolicy.prewarm_singletons
        assert not LearnedPolicy.prewarm_singletons


class TestPrewarmController:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PrewarmConfig(policy="nope")
        with pytest.raises(ValueError):
            PrewarmConfig(window_ms=0.0)
        with pytest.raises(ValueError):
            PrewarmConfig(max_prewarm_per_tick=0)

    def test_plan_is_budget_capped(self):
        config = PrewarmConfig(policy="histogram", window_ms=100.0,
                               service_ms_hint=100.0,
                               max_prewarm_per_tick=3,
                               max_warm_per_function=8)
        controller = PrewarmController(config)
        # Two hot functions, each forecasting far more than the budget.
        t = 0.0
        for _ in range(40):
            for function in ("a", "b"):
                for _ in range(5):
                    controller.note_arrival(function, t)
                    t += 2.0
        actions = controller.plan(t + 100.0, {"a": 0, "b": 0})
        added = sum(a.add_replicas for a in actions)
        assert 0 < added <= 3

    def test_burn_rate_boosts_targets(self):
        config = PrewarmConfig(policy="histogram", window_ms=100.0,
                               burn_threshold=1.0, burn_boost=2.0,
                               max_prewarm_per_tick=32,
                               max_warm_per_function=32)
        results = {}
        for label, burn in (("calm", 0.0), ("burning", 5.0)):
            controller = PrewarmController(config)
            t = 0.0
            for _ in range(30):
                for _ in range(4):
                    controller.note_arrival("f", t)
                    t += 5.0
            actions = controller.plan(t + 100.0, {"f": 0}, burn_rate=burn)
            results[label] = sum(a.add_replicas for a in actions)
        assert results["burning"] > results["calm"]
        assert results["calm"] > 0

    def test_keepalive_falls_back_to_default_until_data(self):
        controller = PrewarmController(PrewarmConfig(policy="histogram"))
        assert controller.keepalive_ms("unknown", 42_000.0) == 42_000.0
