"""Tests for the real-criu subprocess driver (dry-run / argv planning)."""

import pytest

from repro.criu.cli import CriuCli, CriuUnavailableError


@pytest.fixture
def cli():
    return CriuCli(criu_path="/usr/sbin/criu", dry_run=True)


class TestAvailability:
    def test_unavailable_without_binary(self):
        cli = CriuCli(criu_path=None)
        cli.criu_path = None  # even if which() found one, force absence
        assert not cli.available
        with pytest.raises(CriuUnavailableError):
            cli.require()

    def test_available_with_path(self, cli):
        assert cli.available
        assert cli.require() == "/usr/sbin/criu"


class TestDumpArgv:
    def test_default_flags(self, cli):
        argv = cli.dump_argv(1234, "/tmp/images")
        assert argv[:3] == ["/usr/sbin/criu", "dump", "-t"]
        assert "1234" in argv
        assert "-D" in argv and "/tmp/images" in argv
        assert "--leave-running" in argv
        assert "--shell-job" in argv

    def test_no_leave_running(self, cli):
        argv = cli.dump_argv(1, "/d", leave_running=False)
        assert "--leave-running" not in argv

    def test_track_mem_and_prev_images(self, cli):
        argv = cli.dump_argv(1, "/d", track_mem=True, prev_images_dir="/prev")
        assert "--track-mem" in argv
        assert argv[argv.index("--prev-images-dir") + 1] == "/prev"

    def test_tcp_established(self, cli):
        assert "--tcp-established" in cli.dump_argv(1, "/d", tcp_established=True)


class TestRestoreArgv:
    def test_default_flags(self, cli):
        argv = cli.restore_argv("/tmp/images")
        assert argv[:2] == ["/usr/sbin/criu", "restore"]
        assert "--restore-detached" in argv
        assert "--shell-job" in argv

    def test_lazy_pages(self, cli):
        assert "--lazy-pages" in cli.restore_argv("/d", lazy_pages=True)

    def test_check_argv(self, cli):
        assert cli.check_argv() == ["/usr/sbin/criu", "check"]


class TestDryRunExecution:
    def test_dry_run_records_invocations(self, cli):
        result = cli.check()
        assert result.ok and not result.executed
        assert cli.invocations == [["/usr/sbin/criu", "check"]]

    def test_dry_run_dump_and_restore(self, cli):
        cli.dump(42, "/tmp/x")
        cli.restore("/tmp/x")
        assert len(cli.invocations) == 2
        assert cli.invocations[0][1] == "dump"
        assert cli.invocations[1][1] == "restore"

    def test_real_execution_requires_binary(self):
        cli = CriuCli(criu_path=None, dry_run=False)
        cli.criu_path = None
        with pytest.raises(CriuUnavailableError):
            cli.check()
