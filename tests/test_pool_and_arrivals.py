"""Tests for the warm-pool baseline, arrival generators and the
platform-level cold-start study."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    inter_arrival_gaps,
    poisson_arrivals,
)
from repro.bench.platform_study import (
    compare_strategies,
    render_study,
    run_platform_study,
    run_pool_study,
)
from repro.core.starters import VanillaStarter
from repro.faas.pool import WarmPool
from repro.functions import NoopFunction


@pytest.fixture
def pool(kernel):
    return WarmPool(kernel, VanillaStarter(kernel), NoopFunction, size=2)


class TestWarmPool:
    def test_refill_tops_up(self, pool):
        assert pool.refill() == 2
        assert pool.idle_count == 2
        assert pool.refill() == 0

    def test_take_hit_consumes_idle(self, pool):
        pool.refill()
        handle = pool.take()
        assert handle.runtime.ready
        assert pool.idle_count == 1
        assert pool.stats.hits == 1

    def test_take_miss_cold_starts(self, pool, kernel):
        t0 = kernel.clock.now
        handle = pool.take()
        assert pool.stats.misses == 1
        assert handle.runtime.ready
        assert kernel.clock.now - t0 > 50.0  # paid a vanilla cold start

    def test_hit_is_instant(self, pool, kernel):
        pool.refill()
        t0 = kernel.clock.now
        pool.take()
        assert kernel.clock.now == t0  # no start-up charged on a hit

    def test_serve_returns_replica_to_pool(self, pool):
        pool.refill()
        response = pool.serve()
        assert response.ok
        assert pool.idle_count == 2

    def test_hit_rate(self, pool):
        pool.refill()
        pool.take()
        pool.take()
        pool.take()  # third is a miss
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_idle_cost_accrues_over_time(self, pool, kernel):
        pool.refill()
        kernel.clock.advance(1000.0)
        cost = pool.snapshot_idle_cost()
        # 2 idle replicas x ~13 MiB x 1000 ms.
        assert cost == pytest.approx(2 * 13.0 * 1000.0, rel=0.1)

    def test_drain_kills_idle(self, pool):
        pool.refill()
        assert pool.drain() == 2
        assert pool.idle_count == 0

    def test_zero_size_pool_always_misses(self, kernel):
        pool = WarmPool(kernel, VanillaStarter(kernel), NoopFunction, size=0)
        pool.refill()
        pool.take()
        assert pool.stats.misses == 1

    def test_negative_size_rejected(self, kernel):
        with pytest.raises(ValueError):
            WarmPool(kernel, VanillaStarter(kernel), NoopFunction, size=-1)


class TestArrivals:
    def test_poisson_rate_approximately_met(self):
        trace = poisson_arrivals(rate_per_s=50, duration_ms=60_000, seed=1)
        assert len(trace) == pytest.approx(3000, rel=0.15)

    def test_poisson_sorted_and_in_range(self):
        trace = poisson_arrivals(10, 10_000, seed=2)
        assert trace == sorted(trace)
        assert all(0 < t < 10_000 for t in trace)

    def test_poisson_deterministic_per_seed(self):
        assert poisson_arrivals(10, 5000, seed=3) == poisson_arrivals(10, 5000, seed=3)

    def test_poisson_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1000)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0)

    def test_bursty_has_quiet_gaps(self):
        trace = bursty_arrivals(50, 300_000, mean_on_ms=1000,
                                mean_off_ms=20_000, seed=4)
        gaps = list(inter_arrival_gaps(trace))
        assert max(gaps) > 5_000  # real silence between bursts
        assert min(gaps) < 100    # dense trains inside bursts

    def test_bursty_sorted(self):
        trace = bursty_arrivals(20, 100_000, seed=5)
        assert trace == sorted(trace)

    def test_bursty_invalid_args(self):
        with pytest.raises(ValueError):
            bursty_arrivals(10, 1000, mean_on_ms=0)

    def test_diurnal_rate_varies_with_phase(self):
        period = 100_000.0
        trace = diurnal_arrivals(100, period, period_ms=period,
                                 floor_fraction=0.05, seed=6)
        trough = sum(1 for t in trace if t < period * 0.25)
        peak = sum(1 for t in trace if period * 0.4 < t < period * 0.65)
        assert peak > 3 * trough

    def test_diurnal_invalid_floor(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(10, 1000, floor_fraction=1.5)

    @given(rate=st.floats(min_value=1.0, max_value=200.0),
           seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_poisson_properties(self, rate, seed):
        trace = poisson_arrivals(rate, 20_000, seed=seed)
        assert trace == sorted(trace)
        assert all(t >= 0 for t in trace)


class TestPlatformStudy:
    @pytest.fixture(scope="class")
    def trace(self):
        return bursty_arrivals(20, 300_000, mean_on_ms=2000,
                               mean_off_ms=40_000, seed=7)

    def test_prebake_cuts_cold_latency_not_frequency(self, trace):
        vanilla = run_platform_study("markdown", "vanilla", trace,
                                     idle_timeout_ms=20_000, seed=1)
        prebake = run_platform_study("markdown", "prebake", trace,
                                     idle_timeout_ms=20_000, seed=1)
        # Same GC policy → same cold-start frequency...
        assert vanilla.cold_starts == prebake.cold_starts
        # ...but prebaking halves the tail latency those cause.
        assert prebake.latency_p(0.99) < 0.7 * vanilla.latency_p(0.99)

    def test_pool_eliminates_cold_waits_at_memory_cost(self, trace):
        pool = run_pool_study("markdown", trace, pool_size=1, seed=1)
        assert pool.latency_p(0.99) == 0.0
        assert pool.idle_mib_ms > 0

    def test_compare_strategies_render(self, trace):
        results = compare_strategies("noop", trace[:40],
                                     idle_timeout_ms=10_000)
        text = render_study(results, "test study")
        assert "vanilla" in text and "prebake" in text and "pool-1" in text

    def test_shorter_timeout_more_cold_starts(self):
        trace = poisson_arrivals(0.5, 400_000, seed=8)
        short = run_platform_study("noop", "prebake", trace,
                                   idle_timeout_ms=500.0, seed=2)
        long = run_platform_study("noop", "prebake", trace,
                                  idle_timeout_ms=120_000.0, seed=2)
        assert short.cold_starts > long.cold_starts
        assert long.idle_mib_ms > short.idle_mib_ms
