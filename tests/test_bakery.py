"""Tests for the concurrent bake service (§7)."""

import pytest

from repro.core.bakery import (
    BakeService,
    bake_farm_sweep,
    measure_bake_duration,
)
from repro.core.policy import AfterWarmup
from repro.sim.engine import Simulation


def make_service(workers=2):
    sim = Simulation()
    service = BakeService(sim, workers=workers)
    service.register_function("fast", 100.0)
    service.register_function("slow", 400.0)
    return sim, service


class TestBakeService:
    def test_single_job(self):
        sim, service = make_service()
        service.submit("fast")
        metrics = service.run()
        job = metrics.jobs[0]
        assert job.queue_wait_ms == 0.0
        assert job.turnaround_ms == pytest.approx(100.0)

    def test_parallel_jobs_no_queueing(self):
        sim, service = make_service(workers=2)
        service.submit("fast", at_ms=0.0)
        service.submit("fast", at_ms=0.0)
        metrics = service.run()
        assert all(j.queue_wait_ms == 0.0 for j in metrics.jobs)
        assert metrics.makespan_ms == pytest.approx(100.0)

    def test_queueing_beyond_workers(self):
        sim, service = make_service(workers=1)
        for _ in range(3):
            service.submit("fast", at_ms=0.0)
        metrics = service.run()
        waits = sorted(j.queue_wait_ms for j in metrics.jobs)
        assert waits == [pytest.approx(0.0), pytest.approx(100.0),
                         pytest.approx(200.0)]
        assert metrics.makespan_ms == pytest.approx(300.0)

    def test_fifo_order(self):
        sim, service = make_service(workers=1)
        service.submit("slow", at_ms=0.0)
        service.submit("fast", at_ms=0.0)
        metrics = service.run()
        slow = next(j for j in metrics.jobs if j.function == "slow")
        fast = next(j for j in metrics.jobs if j.function == "fast")
        assert slow.started_ms < fast.started_ms

    def test_worker_frees_and_takes_next(self):
        sim, service = make_service(workers=1)
        service.submit("fast", at_ms=0.0)
        service.submit("fast", at_ms=50.0)
        metrics = service.run()
        second = metrics.jobs[1]
        assert second.started_ms == pytest.approx(100.0)
        assert second.queue_wait_ms == pytest.approx(50.0)

    def test_unknown_function_rejected(self):
        _, service = make_service()
        with pytest.raises(KeyError):
            service.submit("ghost")

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            BakeService(Simulation(), workers=0)
        _, service = make_service()
        with pytest.raises(ValueError):
            service.register_function("bad", 0.0)

    def test_empty_metrics(self):
        _, service = make_service()
        assert service.metrics.makespan_ms == 0.0
        assert service.metrics.wait_quantile(0.9) == 0.0


class TestBakeOracle:
    def test_bake_duration_scales_with_function_size(self):
        small = measure_bake_duration("synthetic-small",
                                      policy=AfterWarmup(1), seed=1)
        big = measure_bake_duration("synthetic-big",
                                    policy=AfterWarmup(1), seed=1)
        assert big > 1.5 * small

    def test_deterministic(self):
        a = measure_bake_duration("noop", seed=2)
        b = measure_bake_duration("noop", seed=2)
        assert a == b


class TestFarmSweep:
    def test_more_workers_shorter_makespan(self):
        results = bake_farm_sweep(
            ["noop", "markdown"], submissions=8,
            worker_counts=[1, 4], seed=3,
        )
        assert results[4].makespan_ms < 0.5 * results[1].makespan_ms
        assert results[4].wait_quantile(0.9) < results[1].wait_quantile(0.9)

    def test_all_jobs_complete(self):
        results = bake_farm_sweep(["noop"], submissions=5,
                                  worker_counts=[2], seed=4)
        assert all(j.done for j in results[2].jobs)
        assert len(results[2].jobs) == 5
