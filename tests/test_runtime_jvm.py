"""Tests for the JVM runtime model."""

import pytest

from repro.functions import make_app, small_function
from repro.osproc.process import ProcessState
from repro.runtime.base import Request, RuntimeError_
from repro.runtime.jvm import JVMRuntime
from repro.sim.costmodel import DEFAULT_COST_MODEL


def launch(kernel, app=None, boot=True, load=True):
    kernel.fs.ensure("/opt/jvm/bin/java", size=128 * 1024)
    proc = kernel.clone(kernel.init_process, comm="java")
    kernel.execve(proc, "/opt/jvm/bin/java")
    runtime = JVMRuntime(kernel, proc)
    if boot:
        runtime.boot()
    if load:
        runtime.load_application(app or make_app("noop"))
    return runtime


class TestLifecycle:
    def test_boot_charges_rts(self, quiet_kernel):
        before = quiet_kernel.clock.now
        runtime = launch(quiet_kernel, load=False)
        elapsed = quiet_kernel.clock.now - before
        # clone + exec + rts
        expected = (DEFAULT_COST_MODEL.clone_ms + DEFAULT_COST_MODEL.exec_ms
                    + DEFAULT_COST_MODEL.jvm_rts_ms)
        assert elapsed == pytest.approx(expected)
        assert runtime.booted and not runtime.ready

    def test_double_boot_rejected(self, kernel):
        runtime = launch(kernel, load=False)
        with pytest.raises(RuntimeError_):
            runtime.boot()

    def test_load_before_boot_rejected(self, kernel):
        kernel.fs.ensure("/opt/jvm/bin/java", size=1)
        proc = kernel.clone(kernel.init_process)
        kernel.execve(proc, "/opt/jvm/bin/java")
        runtime = JVMRuntime(kernel, proc)
        with pytest.raises(RuntimeError_, match="boot"):
            runtime.load_application(make_app("noop"))

    def test_double_load_rejected(self, kernel):
        runtime = launch(kernel)
        with pytest.raises(RuntimeError_, match="already loaded"):
            runtime.load_application(make_app("noop"))

    def test_ready_probe_emitted(self, kernel):
        seen = []
        kernel.probes.on_enter("runtime.ready", lambda r: seen.append(r.detail))
        launch(kernel)
        assert seen == ["noop"]

    def test_handle_before_ready_rejected(self, kernel):
        runtime = launch(kernel, load=False)
        with pytest.raises(RuntimeError_):
            runtime.handle(Request())

    def test_dead_process_rejected(self, kernel):
        runtime = launch(kernel)
        kernel.kill(runtime.process.pid)
        with pytest.raises(RuntimeError_):
            runtime.handle(Request())


class TestMemoryFootprint:
    def test_base_rss_near_13mib(self, kernel):
        runtime = launch(kernel, app=make_app("noop"))
        assert runtime.process.rss_mib == pytest.approx(13.0, abs=0.5)

    def test_resizer_grows_to_paper_footprint(self, kernel):
        runtime = launch(kernel, app=make_app("image-resizer"))
        assert runtime.process.rss_mib == pytest.approx(99.2, abs=0.5)

    def test_grow_heap_extends_past_arena(self, kernel):
        runtime = launch(kernel)
        runtime.grow_heap(100.0)  # beyond the 24 MiB reserved arena
        assert runtime.process.rss_mib > 100.0

    def test_open_fds_include_jar_and_socket(self, kernel):
        runtime = launch(kernel)
        paths = [d.file.path for d in runtime.process.open_files()]
        assert any(p.endswith("function.jar") for p in paths)
        assert any(p.startswith("socket:") for p in paths)


class TestClassLoading:
    def test_first_request_loads_all_classes(self, kernel):
        app = small_function()
        runtime = launch(kernel, app=app)
        assert runtime.loaded_classes == 0
        runtime.handle(Request())
        assert runtime.loaded_classes == len(app.classes)

    def test_second_request_loads_nothing_more(self, kernel):
        app = small_function()
        runtime = launch(kernel, app=app)
        runtime.handle(Request())
        t0 = kernel.clock.now
        runtime.handle(Request())
        # Second request only pays service time (well under class load).
        assert kernel.clock.now - t0 < 5.0

    def test_class_load_grows_metaspace(self, kernel):
        app = small_function()
        runtime = launch(kernel, app=app)
        rss_before = runtime.process.rss_mib
        runtime.handle(Request())
        assert runtime.process.rss_mib - rss_before == pytest.approx(2.8, abs=0.3)

    def test_cold_load_cost_matches_model(self, quiet_kernel):
        app = small_function()
        runtime = launch(quiet_kernel, app=app)
        t0 = quiet_kernel.clock.now
        runtime.handle(Request())
        elapsed = quiet_kernel.clock.now - t0
        expected = DEFAULT_COST_MODEL.cold_load_cost(374, 2.8 * 1024)
        # elapsed = class load + service time (0.5ms nominal)
        assert elapsed == pytest.approx(expected + app.profile.service_ms, rel=0.02)

    def test_warm_page_cache_reduces_load_cost(self, quiet_kernel):
        app = small_function()
        runtime = launch(quiet_kernel, app=app)
        jar = quiet_kernel.fs.lookup(runtime.jar_path)
        quiet_kernel.page_cache.warm(jar, fraction=1.0)
        t0 = quiet_kernel.clock.now
        runtime.handle(Request())
        elapsed = quiet_kernel.clock.now - t0
        expected = DEFAULT_COST_MODEL.restored_load_cost(374, 2.8 * 1024)
        assert elapsed == pytest.approx(expected + app.profile.service_ms, rel=0.02)

    def test_classload_probe_emitted(self, kernel):
        seen = []
        kernel.probes.on_enter("runtime.classload", lambda r: seen.append(r.detail))
        runtime = launch(kernel, app=small_function())
        runtime.handle(Request())
        assert seen and "374" in seen[0]


class TestRequests:
    def test_response_carries_service_timing(self, kernel):
        runtime = launch(kernel)
        response = runtime.handle(Request())
        assert response.ok
        assert response.service_ms > 0

    def test_first_response_probe(self, kernel):
        seen = []
        kernel.probes.on_enter("runtime.first_response", lambda r: seen.append(r.pid))
        runtime = launch(kernel)
        runtime.handle(Request())
        runtime.handle(Request())
        assert seen == [runtime.process.pid]

    def test_requests_served_counter(self, kernel):
        runtime = launch(kernel)
        for _ in range(3):
            runtime.handle(Request())
        assert runtime.requests_served == 3
