"""Tests for the dump side of the CRIU protocol."""

import pytest

from repro.criu.checkpoint import CheckpointEngine, CheckpointError
from repro.osproc.process import ProcessState
from repro.sim.costmodel import DEFAULT_COST_MODEL


@pytest.fixture
def engine(kernel):
    return CheckpointEngine(kernel)


@pytest.fixture
def target(kernel):
    proc = kernel.clone(kernel.init_process, comm="java")
    kernel.fs.ensure("/bin/java", size=1000)
    kernel.execve(proc, "/bin/java")
    proc.address_space.grow_anon("heap", 2.0, content_tag="heap")
    jar = kernel.fs.ensure("/fn.jar", size=64 * 1024)
    proc.open_fd(jar, flags="r")
    return proc


class TestDumpProtocol:
    def test_dump_leaves_target_running(self, engine, target):
        image = engine.dump(target, leave_running=True)
        assert target.state is ProcessState.RUNNING
        assert image.pid == target.pid

    def test_dump_kill_on_request(self, engine, target, kernel):
        engine.dump(target, leave_running=False)
        assert target.state is ProcessState.DEAD

    def test_dump_captures_all_resident_pages(self, engine, target):
        expected = sum(v.resident_pages for v in target.address_space.vmas)
        image = engine.dump(target)
        assert image.resident_pages == expected

    def test_parasite_never_in_image(self, engine, target):
        image = engine.dump(target)
        assert all(v.kind != "parasite" for v in image.vmas)
        # And the parasite is cured from the live process too.
        assert target.address_space.find_by_label("criu-parasite") is None

    def test_dump_records_fds(self, engine, target):
        image = engine.dump(target)
        paths = [fd.path for fd in image.fds]
        assert "/fn.jar" in paths

    def test_dump_records_namespaces(self, engine, target):
        image = engine.dump(target)
        assert image.namespace_ids == target.namespaces.ids()

    def test_dump_dead_target_rejected(self, engine, target, kernel):
        kernel.kill(target.pid)
        with pytest.raises(CheckpointError):
            engine.dump(target)

    def test_dump_frozen_target_rejected(self, engine, target, kernel):
        kernel.freeze(target)
        with pytest.raises(CheckpointError, match="must be running"):
            engine.dump(target)

    def test_dump_advances_clock(self, engine, target, kernel):
        before = kernel.clock.now
        engine.dump(target)
        assert kernel.clock.now > before

    def test_dump_cost_scales_with_rss(self, quiet_kernel):
        engine = CheckpointEngine(quiet_kernel)
        small = quiet_kernel.clone(quiet_kernel.init_process)
        small.address_space.grow_anon("heap", 1.0)
        big = quiet_kernel.clone(quiet_kernel.init_process)
        big.address_space.grow_anon("heap", 50.0)
        t0 = quiet_kernel.clock.now
        engine.dump(small)
        small_cost = quiet_kernel.clock.now - t0
        t0 = quiet_kernel.clock.now
        engine.dump(big)
        big_cost = quiet_kernel.clock.now - t0
        # The 49 extra MiB cost dump_per_mib_ms each.
        assert big_cost - small_cost == pytest.approx(
            49.0 * DEFAULT_COST_MODEL.dump_per_mib_ms, rel=0.05)

    def test_image_size_tracks_rss(self, engine, kernel):
        proc = kernel.clone(kernel.init_process)
        proc.address_space.grow_anon("heap", 8.0)
        image = engine.dump(proc)
        assert image.total_mib == pytest.approx(8.0, abs=0.5)

    def test_warm_flag_propagates(self, engine, target):
        assert engine.dump(target, warm=True).warm is True

    def test_unique_image_ids(self, engine, target):
        a = engine.dump(target)
        b = engine.dump(target)
        assert a.image_id != b.image_id


class TestIncrementalDump:
    def test_pre_dump_clears_soft_dirty(self, engine, target, kernel):
        engine.pre_dump(target)
        assert not any(
            page.soft_dirty
            for vma in target.address_space.vmas
            for page in vma.pages.values()
        )

    def test_incremental_dump_only_dirty_pages(self, engine, target, kernel):
        parent = engine.pre_dump(target)
        # Touch 3 pages after the pre-dump.
        vma = target.address_space.find_by_label("heap")
        for index in (0, 1, 2):
            vma.touch(index)
        child = engine.dump(target, parent_image=parent)
        assert child.parent_image_id == parent.image_id
        assert child.resident_pages == 3

    def test_incremental_without_writes_is_empty(self, engine, target):
        parent = engine.pre_dump(target)
        child = engine.dump(target, parent_image=parent)
        assert child.resident_pages == 0
