"""Tests for repro.obs.spans and the zero-cost kernel helpers."""

import pytest

from repro import make_world, obs
from repro.obs.spans import NULL_SPAN, NullSpan, SpanError, Tracer


class FakeClock:
    """Minimal clock: a settable ``now`` in milliseconds."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, ms: float) -> None:
        self.now += ms


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestTracer:
    def test_nesting_and_parentage(self, tracer, clock):
        with tracer.span("root") as root:
            clock.advance(5.0)
            with tracer.span("child") as child:
                clock.advance(2.0)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert tracer.roots() == [root]
        assert tracer.children(root) == [child]
        assert tracer.children(child) == []

    def test_timestamps_come_from_the_clock(self, tracer, clock):
        clock.advance(3.0)
        with tracer.span("op") as span:
            clock.advance(7.5)
        assert span.start_ms == 3.0
        assert span.end_ms == 10.5
        assert span.duration_ms == 7.5

    def test_completion_order_is_innermost_first(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_each_root_opens_a_fresh_trace(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert tracer.by_trace(a.trace_id) == [a]

    def test_attributes_and_set_chain(self, tracer):
        with tracer.span("op", function="md") as span:
            assert span.set(mib=12.5) is span
        assert span.attributes == {"function": "md", "mib": 12.5}
        record = span.as_dict()
        assert record["name"] == "op"
        assert record["attrs"] == {"function": "md", "mib": 12.5}
        assert record["duration_ms"] == record["end_ms"] - record["start_ms"]

    def test_exception_marks_span_error(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("kaput")
        assert span.finished
        assert span.status == "error"
        assert "kaput" in span.attributes["error"]

    def test_double_finish_rejected(self, tracer):
        span = tracer.span("op")
        tracer.finish(span)
        with pytest.raises(SpanError, match="twice"):
            tracer.finish(span)

    def test_out_of_order_finish_rejected(self, tracer):
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(SpanError, match="out of order"):
            tracer.finish(outer)
        assert tracer.active_depth == 2

    def test_unfinished_span_has_no_duration(self, tracer):
        span = tracer.span("op")
        with pytest.raises(SpanError, match="not finished"):
            span.duration_ms
        assert span.as_dict()["duration_ms"] is None

    def test_find_and_drain(self, tracer):
        with tracer.span("a"):
            pass
        keep_open = tracer.span("b")
        assert [s.name for s in tracer.find("a")] == ["a"]
        drained = tracer.drain()
        assert [s.name for s in drained] == ["a"]
        assert tracer.spans == []
        # the active span survives the drain and finishes normally
        tracer.finish(keep_open)
        assert [s.name for s in tracer.spans] == ["b"]

    def test_iter_dicts_matches_spans(self, tracer):
        with tracer.span("x", k=1):
            pass
        (record,) = list(tracer.iter_dicts())
        assert record == tracer.spans[0].as_dict()


class TestKernelHelpers:
    def test_unobserved_world_is_a_noop(self):
        kernel = make_world(seed=1).kernel
        assert kernel.obs is None
        assert obs.span(kernel, "anything", k=1) is NULL_SPAN
        obs.count(kernel, "c")
        obs.gauge(kernel, "g", 1.0)
        obs.observe(kernel, "h", 1.0)
        assert kernel.obs is None

    def test_null_span_api(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
            assert span.set(x=1) is NULL_SPAN
        assert NULL_SPAN.finished
        assert isinstance(NULL_SPAN, NullSpan)

    def test_install_is_idempotent(self):
        kernel = make_world(seed=1).kernel
        hub = obs.install(kernel)
        assert obs.install(kernel) is hub
        obs.uninstall(kernel)
        assert kernel.obs is None

    def test_make_world_observe_flag(self):
        kernel = make_world(seed=1, observe=True).kernel
        assert kernel.obs is not None
        assert kernel.obs.tracer.clock is kernel.clock

    def test_helpers_route_to_installed_hub(self):
        kernel = make_world(seed=1, observe=True).kernel
        with obs.span(kernel, "op", k="v"):
            obs.count(kernel, "hits", labels={"fn": "a"})
            obs.gauge(kernel, "depth", 2.0)
            obs.observe(kernel, "lat_ms", 5.0)
        (span,) = kernel.obs.tracer.find("op")
        assert span.attributes == {"k": "v"}
        assert kernel.obs.metrics.value("hits") == 1.0
        assert kernel.obs.metrics.value("depth") == 2.0
        assert kernel.obs.metrics.histogram("lat_ms").count == 1

    def test_per_world_buffers_are_isolated(self):
        w1 = make_world(seed=1, observe=True).kernel
        w2 = make_world(seed=2, observe=True).kernel
        with obs.span(w1, "only-in-w1"):
            pass
        assert w1.obs.tracer.find("only-in-w1")
        assert w2.obs.tracer.spans == []

    def test_spans_stamp_simulated_time(self):
        kernel = make_world(seed=1, observe=True).kernel
        span = obs.span(kernel, "op")
        kernel.clock.advance(42.0)
        span.__exit__(None, None, None)
        assert span.duration_ms == pytest.approx(42.0)
